"""Tests for MiniQmail — the privilege-separation workload (U3)."""

import pytest

from repro.apps.guest import GuestContext
from repro.apps.qmail import MiniQmail, qmail_image, send_mail
from repro.baselines import MonolithicOS
from repro.core import IsolationConfig, UForkOS
from repro.errors import BadAddress, BoundsFault
from repro.machine import Machine


def boot(os_cls=UForkOS, **kwargs):
    if os_cls is UForkOS:
        kwargs.setdefault("isolation", IsolationConfig.full())
    os_ = os_cls(machine=Machine(), **kwargs)
    master = GuestContext(os_, os_.spawn(qmail_image(), "qmail"))
    server = MiniQmail(master)
    server.start()
    client = GuestContext(os_, os_.spawn(qmail_image(), "client"))
    return os_, server, client


class TestPipeline:
    def test_end_to_end_delivery(self):
        os_, server, client = boot()
        fd = send_mail(client, b"alice", b"hello alice")
        accepted, reply = server.smtpd_handle_one()
        assert accepted and reply == b"250 queued\r\n"
        assert client.recv_bytes(fd, 100) == b"250 queued\r\n"

        deliveries = server.local_deliver_all()
        assert len(deliveries) == 1
        assert server.mailbox("alice") == b"hello alice\n---\n"

    def test_multiple_users_and_messages(self):
        os_, server, client = boot()
        mail = [(b"alice", b"one"), (b"bob", b"two"), (b"alice", b"three")]
        for user, body in mail:
            send_mail(client, user, body)
            server.smtpd_handle_one()
        server.local_deliver_all()
        assert server.mailbox("alice") == b"one\n---\nthree\n---\n"
        assert server.mailbox("bob") == b"two\n---\n"

    def test_malformed_input_rejected_before_queue(self):
        os_, server, client = boot()
        fd = client.syscall("connect", server.port)
        client.send_bytes(fd, b"GARBAGE INPUT \xff\xfe")
        accepted, reply = server.smtpd_handle_one()
        assert not accepted
        assert reply.startswith(b"550")
        assert server.local_deliver_all() == []

    def test_bad_mailbox_name_rejected(self):
        os_, server, client = boot()
        fd = client.syscall("connect", server.port)
        client.send_bytes(fd, b"RCPT:../etc/passwd\nDATA:evil")
        accepted, _reply = server.smtpd_handle_one()
        assert not accepted

    @pytest.mark.parametrize("os_cls", [UForkOS, MonolithicOS])
    def test_pipeline_runs_on_both_oses(self, os_cls):
        os_, server, client = boot(os_cls)
        send_mail(client, b"carol", b"portable")
        server.smtpd_handle_one()
        server.local_deliver_all()
        assert server.mailbox("carol") == b"portable\n---\n"

    def test_shutdown_reaps_components(self):
        os_, server, client = boot()
        assert os_.process_count() == 4  # master, smtpd, local, client
        server.shutdown()
        assert os_.process_count() == 2


class TestPrivilegeSeparation:
    """The point of U3: a compromised smtpd is confined."""

    def test_smtpd_cannot_reach_locals_memory(self):
        from repro.cheri.capability import Perm
        from repro.cheri.regfile import DDC
        os_, server, _client = boot()
        smtpd_ddc = server.smtpd.reg(DDC)
        local_base = server.local.proc.region_base
        with pytest.raises(BoundsFault):
            smtpd_ddc.check_access(Perm.LOAD, size=8, addr=local_base)

    def test_smtpd_cannot_leak_masters_buffers_via_kernel(self):
        from repro.cheri.capability import Capability, Perm
        from repro.kernel.vfs import O_CREAT, O_WRONLY
        os_, server, _client = boot()
        smtpd = server.smtpd
        fd = smtpd.syscall("open", "/tmp-exfil", O_CREAT | O_WRONLY)
        forged = Capability(
            base=server.ctx.proc.region_base, length=256,
            cursor=server.ctx.proc.region_base, perms=Perm.data_rw(),
        )
        with pytest.raises(BadAddress):
            smtpd.syscall("write", fd, forged, 256)

    def test_smtpd_memory_corruption_faults_not_corrupts(self):
        """A parser overflow faults on capability bounds instead of
        silently smashing adjacent state."""
        os_, server, _client = boot()
        smtpd = server.smtpd
        parse_buf = smtpd.malloc(64)
        with pytest.raises(BoundsFault):
            smtpd.store(parse_buf, b"X" * 65)
        # the component is still alive and the pipeline still works
        assert smtpd.proc.alive

    def test_crashed_smtpd_replaceable_without_restart(self):
        """The master forks a fresh smtpd after a crash — the fork-based
        recovery that makes privilege separation operable."""
        os_, server, client = boot()
        server.smtpd.exit(139)  # "segfault"
        server.ctx.wait(server.smtpd.pid)
        server.smtpd = server.ctx.fork()  # fresh component
        send_mail(client, b"dave", b"after crash")
        accepted, _ = server.smtpd_handle_one()
        assert accepted
        server.local_deliver_all()
        assert server.mailbox("dave") == b"after crash\n---\n"

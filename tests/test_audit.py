"""Tests for the kernel isolation auditor, and audits of the system
after every kind of workload the suite exercises."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.apps.redis import MiniRedis, populate, redis_image
from repro.core import CopyStrategy, UForkOS
from repro.core.audit import audit_isolation
from repro.machine import Machine
from repro.mem.layout import KiB, MiB


def boot(**kwargs):
    return UForkOS(machine=Machine(), **kwargs)


def spawn(os_, name="app"):
    return GuestContext(os_, os_.spawn(hello_world_image(), name))


class TestAuditor:
    def test_fresh_system_clean(self):
        os_ = boot()
        spawn(os_)
        spawn(os_)
        assert audit_isolation(os_) == []

    def test_detects_planted_memory_leak(self):
        """The auditor actually catches violations: plant a capability
        to μprocess A inside μprocess B via a privileged write."""
        os_ = boot()
        a = spawn(os_, "a")
        b = spawn(os_, "b")
        evil = a.reg("csp")  # a's stack capability
        os_.space.store_cap(b.proc.layout.base("data") + 64, evil,
                            privileged=True)
        violations = audit_isolation(os_)
        assert len(violations) == 1
        assert violations[0].pid == b.pid
        assert "memory capability" in violations[0].reason

    def test_detects_planted_register_leak(self):
        os_ = boot()
        a = spawn(os_, "a")
        b = spawn(os_, "b")
        b.set_reg("c15", a.reg("csp"))
        violations = audit_isolation(os_)
        assert any(v.location == "register c15" and v.pid == b.pid
                   for v in violations)

    def test_sentry_gates_are_not_violations(self):
        os_ = boot()
        ctx = spawn(os_)
        holder = ctx.malloc(16)
        # user code stores its (kernel-pointing, sealed) gate in memory
        os_.space.store_cap(holder.base, ctx.proc.syscall_gate,
                            privileged=True)
        assert audit_isolation(os_) == []


class TestWorkloadsLeaveSystemClean:
    @pytest.mark.parametrize("strategy", list(CopyStrategy))
    def test_after_fork_tree(self, strategy):
        os_ = boot(copy_strategy=strategy)
        root = spawn(os_)
        buf = root.malloc(64)
        root.store_cap(buf, root.malloc(16))
        root.set_reg("c9", buf)
        child = root.fork()
        grandchild = child.fork()
        # touch everything so lazy copies resolve
        for ctx in (child, grandchild):
            ctx.load_cap(ctx.reg("c9"))
        assert audit_isolation(os_) == []

    def test_after_redis_snapshot(self):
        os_ = boot()
        proc = os_.spawn(redis_image(1 * MiB), "redis")
        store = MiniRedis(GuestContext(os_, proc), nbuckets=64)
        populate(store, 256 * KiB, value_size=32 * KiB)
        store.bgsave("/d.rdb")
        assert audit_isolation(os_) == []

    def test_after_migration_and_compaction(self):
        os_ = boot()
        contexts = [spawn(os_, f"p{i}") for i in range(5)]
        for ctx in contexts:
            block = ctx.malloc(32)
            ctx.store_cap(block, ctx.malloc(16))
            ctx.set_reg("c9", block)
        contexts[1].exit(0)
        contexts[3].exit(0)
        os_.compact()
        assert audit_isolation(os_) == []

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000))
    def test_prop_random_fork_workload_stays_clean(self, seed):
        import random
        rng = random.Random(seed)
        os_ = boot(copy_strategy=rng.choice(list(CopyStrategy)))
        root = spawn(os_)
        live = [root]
        for _ in range(rng.randrange(2, 10)):
            actor = rng.choice(live)
            action = rng.randrange(3)
            if action == 0:
                block = actor.malloc(rng.choice([16, 48, 96]))
                actor.store_cap(block, actor.malloc(16))
                actor.set_reg("c9", block)
            elif action == 1:
                live.append(actor.fork())
            elif len(live) > 1 and actor is not root:
                live.remove(actor)
                actor.exit(0)
        assert audit_isolation(os_) == []

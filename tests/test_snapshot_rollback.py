"""Transactional-restore tier: kill restore at every phase boundary and
prove the target kernel is exactly as it was — no leaked frames, VA
reservations, PIDs, PTEs or half-populated fd tables — then show the
very same blob restores once the chaos clears (retriability)."""

import pytest

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.chaos import ChaosEngine, FaultMix, InjectedRestoreFailure
from repro.core import CopyStrategy, UForkOS
from repro.machine import Machine
from repro.snapshot import checkpoint, restore

ABORT_POINTS = [
    "core.snapshot.abort.reserve",
    "core.snapshot.abort.pages",
    "core.snapshot.abort.registers",
    "core.snapshot.abort.allocator",
]


def make_blob(seed=7):
    """A donor machine produces the blob, then is torn down."""
    machine = Machine(seed=seed)
    os_ = UForkOS(machine=machine, copy_strategy=CopyStrategy.COPA)
    ctx = GuestContext(os_, os_.spawn(hello_world_image(), "donor"))
    cap = ctx.malloc(128)
    ctx.store(cap, b"precious snapshot state")
    ctx.store_cap(cap, cap, offset=48)
    ctx.set_reg("c19", cap)
    blob = checkpoint(os_, ctx.proc)
    ctx.exit(0)
    return blob


def boot_target(spec, seed=7):
    machine = Machine(seed=seed)
    machine.obs.enable()
    engine = ChaosEngine(seed=seed, mix=FaultMix.parse(spec))
    engine.attach(machine)
    with engine.paused():
        os_ = UForkOS(machine=machine, copy_strategy=CopyStrategy.COPA)
        ctx = GuestContext(os_, os_.spawn(hello_world_image(), "resident"))
    return os_, ctx, engine


def kernel_snapshot(os_):
    """Everything a leaky restore could perturb."""
    machine = os_.machine
    ptes = {
        vpn: (pte.frame, pte.perms, machine.phys.refcount(pte.frame))
        for vpn, pte in os_.space.page_table.entries()
    }
    return {
        "frames": machine.phys.allocated_frames,
        "ptes": ptes,
        "reserved": sorted(os_.vspace.reserved_areas()),
        "alive_pids": sorted(p.pid for p in os_.procs.alive()),
    }


@pytest.mark.parametrize("point", ABORT_POINTS,
                         ids=lambda p: p.rsplit(".", 1)[-1])
def test_abort_at_every_boundary_leaks_nothing(point):
    blob = make_blob()
    os_, ctx, engine = boot_target(spec=f"{point}=1.0")
    before = kernel_snapshot(os_)

    with pytest.raises(InjectedRestoreFailure):
        restore(os_, blob)

    assert kernel_snapshot(os_) == before
    assert os_.machine.counters.snapshot().get("restore_rollbacks") == 1
    counters = os_.machine.obs.registry.counters()
    assert counters["core.snapshot.restore_rollbacks"] == 1
    assert engine.recovered.get(point) == 1

    # with the chaos cleared, the very same blob restores and runs
    engine.disable()
    restored = GuestContext(os_, restore(os_, blob))
    cap = restored.reg("c19")
    assert restored.load(cap, 23) == b"precious snapshot state"
    assert restored.load_cap(cap, offset=48).base == cap.base
    restored.exit(0)
    ctx.exit(0)


def test_alloc_failure_mid_page_loop_rolls_back():
    """Frame exhaustion *inside* the page-materialization loop (not at a
    phase boundary) also rolls back fully, and surfaces wrapped as the
    retriable InjectedRestoreFailure."""
    blob = make_blob()
    os_, ctx, engine = boot_target(spec="default=0.0")
    before = kernel_snapshot(os_)
    engine.mix = FaultMix.parse("hw.phys.alloc_fail=0.2")

    with pytest.raises(InjectedRestoreFailure) as excinfo:
        restore(os_, blob)
    assert excinfo.value.__cause__ is not None
    assert excinfo.value.retriable

    engine.mix = FaultMix.parse("default=0.0")
    assert kernel_snapshot(os_) == before
    ctx.exit(0)


def test_disabled_chaos_restores_bit_identically():
    """With injection disabled, the instrumented restore path must be
    byte-identical to a run on a chaos-free machine."""
    blob = make_blob()

    def run(attach_engine):
        machine = Machine(seed=7)
        machine.obs.enable()
        if attach_engine:
            ChaosEngine(seed=7, mix=FaultMix.parse("default=0.5"),
                        enabled=False).attach(machine)
        os_ = UForkOS(machine=machine, copy_strategy=CopyStrategy.COPA)
        restored = GuestContext(os_, restore(os_, blob))
        cap = restored.reg("c19")
        assert restored.load(cap, 23) == b"precious snapshot state"
        restored.exit(0)
        from repro.obs import to_json
        return to_json(machine.obs.export())

    assert run(attach_engine=False) == run(attach_engine=True)

"""IPC objects: pipes and POSIX message queues.

Fast IPC is the SASOS benefit μFork "unlocks for the first time in
fork-based applications" (§5.2, Context1): moving bytes through a pipe
only pays a per-byte copy in the shared address space, while the
monolithic baseline additionally pays trap-based syscalls and TLB
flushes on the context switches between reader and writer (charged by
the OS layers, not here).

The kernel is synchronous in this simulation, so blocking conditions
surface as :class:`~repro.errors.WouldBlock` and drivers alternate
explicitly; EOF and broken-pipe semantics match POSIX.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple

from repro.errors import BrokenPipe, InvalidArgument, WouldBlock

PIPE_CAPACITY = 64 * 1024


class Pipe:
    """A bounded byte channel with distinct read/write ends."""

    def __init__(self, machine: Any, capacity: int = PIPE_CAPACITY) -> None:
        self.machine = machine
        self.capacity = capacity
        self._buffer = bytearray()
        self.read_open = True
        self.write_open = True

    # -- data plane ------------------------------------------------------

    def write(self, data: bytes) -> int:
        if not self.write_open:
            raise BrokenPipe("write end closed")
        if not self.read_open:
            raise BrokenPipe("no readers")
        room = self.capacity - len(self._buffer)
        if room <= 0:
            raise WouldBlock("pipe full")
        chunk = data[:room]
        chaos = self.machine.chaos
        if chaos.enabled and len(chunk) > 1 and \
                chaos.should_fire("kernel.ipc.short_write"):
            # short write: only half the bytes land; POSIX writers loop
            # on the return count, so correctness is the caller's loop
            chunk = chunk[:len(chunk) // 2]
        self._buffer.extend(chunk)
        self.machine.charge(
            self.machine.costs.io_copy_ns_per_byte * len(chunk), "pipe_io"
        )
        self.machine.obs.count("kernel.ipc.pipe_bytes_written", len(chunk))
        return len(chunk)

    def read(self, size: int) -> bytes:
        if not self.read_open:
            raise BrokenPipe("read end closed")
        if not self._buffer:
            if not self.write_open:
                return b""  # EOF
            raise WouldBlock("pipe empty")
        chunk = bytes(self._buffer[:size])
        del self._buffer[:size]
        self.machine.charge(
            self.machine.costs.io_copy_ns_per_byte * len(chunk), "pipe_io"
        )
        self.machine.obs.count("kernel.ipc.pipe_bytes_read", len(chunk))
        return chunk

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    # -- ends as fd objects -----------------------------------------------

    def read_end(self) -> "PipeEnd":
        return PipeEnd(self, readable=True)

    def write_end(self) -> "PipeEnd":
        return PipeEnd(self, readable=False)


class PipeEnd:
    """One end of a pipe, installable in an FD table."""

    def __init__(self, pipe: Pipe, readable: bool) -> None:
        self.pipe = pipe
        self.readable = readable

    def read(self, desc: Any, size: int) -> bytes:
        if not self.readable:
            raise InvalidArgument("read from write end")
        return self.pipe.read(size)

    def write(self, desc: Any, data: bytes) -> int:
        if self.readable:
            raise InvalidArgument("write to read end")
        return self.pipe.write(data)

    def on_last_close(self, desc: Any) -> None:
        if self.readable:
            self.pipe.read_open = False
        else:
            self.pipe.write_open = False


class MessageQueue:
    """A POSIX-style message queue (duplicated across fork per §3.5)."""

    def __init__(self, machine: Any, max_messages: int = 64,
                 max_size: int = 8192, name: Optional[str] = None) -> None:
        self.machine = machine
        self.name = name
        self.max_messages = max_messages
        self.max_size = max_size
        self._queue: Deque[Tuple[int, bytes]] = deque()

    def send(self, data: bytes, priority: int = 0) -> None:
        if len(data) > self.max_size:
            raise InvalidArgument("message too large")
        if len(self._queue) >= self.max_messages:
            raise WouldBlock("queue full")
        self.machine.charge(
            self.machine.costs.io_copy_ns_per_byte * len(data), "mq_io"
        )
        self.machine.obs.count("kernel.ipc.mq_bytes_sent", len(data))
        self._queue.append((priority, bytes(data)))
        self._queue = deque(
            sorted(self._queue, key=lambda item: -item[0])
        )

    def receive(self) -> bytes:
        if not self._queue:
            raise WouldBlock("queue empty")
        _priority, data = self._queue.popleft()
        self.machine.charge(
            self.machine.costs.io_copy_ns_per_byte * len(data), "mq_io"
        )
        self.machine.obs.count("kernel.ipc.mq_bytes_received", len(data))
        return data

    def __len__(self) -> int:
        return len(self._queue)

"""Scheduling and context-switch accounting.

The lightweightness difference the paper measures between μFork and the
monolithic baseline on IPC-heavy workloads (Unixbench Context1, Fig 9)
comes from two mechanisms charged here: switching between tasks in a
single address space needs no page-table change and no TLB flush, while
a multi-address-space switch pays both.

The simulation's drivers are synchronous Python code, so the scheduler
is cooperative: it picks runnable tasks round-robin and charges switch
costs; "blocking" surfaces to drivers as WouldBlock and they re-enter
after switching.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.kernel.task import Task, TaskState


def make_scheduler(machine: Any, same_address_space: bool):
    """Pick the machine's scheduler: the single global round-robin
    queue on a 1-CPU machine (bit-identical to the pre-SMP model), or
    per-CPU run queues with work stealing once more than one CPU is
    online (:class:`repro.smp.sched.SmpScheduler`)."""
    if getattr(machine, "num_cpus", 1) > 1:
        from repro.smp.sched import SmpScheduler
        return SmpScheduler(machine, same_address_space)
    return Scheduler(machine, same_address_space)


class Scheduler:
    """Round-robin over runnable tasks with switch-cost accounting."""

    def __init__(self, machine: Any, same_address_space: bool) -> None:
        self.machine = machine
        self.same_address_space = same_address_space
        #: the run queue as an insertion-ordered set (a dict used for
        #: its ordering guarantee): O(1) membership test on ``add`` and
        #: O(1) removal from the middle, where the former deque paid a
        #: linear scan for both.  Iteration order — and therefore every
        #: scheduling decision — is identical to the deque it replaces.
        self._runnable: Dict[Task, None] = {}
        self.current: Optional[Task] = None
        self.switches = 0
        #: optional pluggable pick policy: a callable receiving the
        #: runnable candidates (queue order) and returning the task to
        #: dispatch, or ``None`` to keep the round-robin default.  The
        #: conformance explorer installs one to permute scheduler
        #: decisions deterministically (see :mod:`repro.conform`).
        self.decision_source = None

    # -- queue management ----------------------------------------------------

    def add(self, task: Task) -> None:
        if task.state is TaskState.RUNNABLE and task not in self._runnable:
            self._runnable[task] = None
            self._observe_depth()

    def remove(self, task: Task) -> None:
        """Drop a task from the run queue.

        Tolerates tasks that were never enqueued (or already removed):
        chaos-driven mid-fork teardown and process exit both remove
        blindly, so removal must be an idempotent no-op rather than a
        raise.
        """
        if task in self._runnable:
            del self._runnable[task]
            self._observe_depth()
        if self.current is task:
            self.current = None

    def _observe_depth(self) -> None:
        """Keep the ``kernel.sched.runqueue_depth`` gauge current."""
        obs = self.machine.obs
        if obs.enabled:
            obs.gauge_set("kernel.sched.runqueue_depth",
                          len(self._runnable))

    def block(self, task: Task) -> None:
        """Block a task (no-op beyond removal for exited tasks —
        blocking must never resurrect a task torn down mid-operation)."""
        if task.state is not TaskState.EXITED:
            task.state = TaskState.BLOCKED
        self.remove(task)

    def wake(self, task: Task) -> None:
        if task.state is TaskState.BLOCKED:
            task.state = TaskState.RUNNABLE
            self.add(task)

    # -- switching ----------------------------------------------------------

    def switch_to(self, task: Task) -> None:
        """Switch the (single simulated) CPU to ``task``, charging costs."""
        if task is self.current:
            return
        costs = self.machine.costs
        if self.same_address_space:
            self.machine.charge(costs.context_switch_sas_ns, "ctx_switch")
        else:
            self.machine.charge(costs.context_switch_mas_ns, "ctx_switch")
            self.machine.tlb.flush()
        self.machine.counters.add("context_switch")
        self.machine.obs.count("kernel.sched.context_switch")
        self.switches += 1
        if self.current is not None and \
                self.current.state is TaskState.RUNNABLE:
            self.add(self.current)
        self.remove(task)
        self.current = task

    def pick_next(self) -> Optional[Task]:
        """Round-robin choice (does not switch); a ``decision_source``
        may override the head-of-queue pick among the runnable set."""
        while self._runnable:
            task = next(iter(self._runnable))
            if task.state is TaskState.RUNNABLE:
                break
            del self._runnable[task]
        if not self._runnable:
            return None
        if self.decision_source is not None:
            candidates = [task for task in self._runnable
                          if task.state is TaskState.RUNNABLE]
            chosen = self.decision_source(candidates)
            if chosen is not None:
                return chosen
        return next(iter(self._runnable))

    def queued_tasks(self) -> list:
        """Every task currently sitting in the run queue (audit hook)."""
        return list(self._runnable)

    def yield_current(self) -> Optional[Task]:
        """Voluntarily yield: switch to the next runnable task, if any."""
        task = self.pick_next()
        if task is not None:
            self.switch_to(task)
        return task

    @property
    def runnable_count(self) -> int:
        return sum(
            1 for task in self._runnable if task.state is TaskState.RUNNABLE
        )

"""Cross-shard μprocess migration: rebalancing a hot shard.

Because every serving worker is a μFork fork of a shard-local zygote
(:mod:`repro.cluster.pool`), a worker's identity splits cleanly into
two parts: the warm runtime state it *shares* with the zygote — present
on every shard already — and the CoW-divergent pages it has written
since fork.  Migration therefore only puts the divergent pages on the
wire:

1. the source shard quiesces and retires the worker through the real
   exit/reap path (frames, PTEs and the PID are released by the
   kernel, verified by the leak auditor);
2. the divergent bytes are charged at the cluster wire rate on top of
   ``migration_fixed_ns`` (docs/COSTMODEL.md);
3. the target shard fast-forks a replacement from *its* zygote — the
   same μFork relocation machinery as any fork, on the target machine.

This zygote-anchored scheme is the cluster-scale payoff of the paper's
fast-fork path: moving a worker costs one reap, one fork, and the wire
time of only its private state.  (Full checkpoint/restore of arbitrary
divergent μprocesses is the ROADMAP's snapshot item, not this module.)
"""

from __future__ import annotations

from typing import Any, Dict

from repro.cluster.params import ClusterCosts


def migrate_worker(source: Any, target: Any,
                   costs: ClusterCosts) -> Dict[str, int]:
    """Move one worker's capacity from ``source`` to ``target`` shard.

    Returns the migration record for the ``repro.cluster/v1`` report:
    the divergent bytes transferred and the simulated cost
    ``migration_ns = migration_fixed_ns + bytes × wire_ns_per_byte``.
    The new worker is not serviceable until that cost has elapsed —
    the runner adds it to the target's capacity at ``now + ns``.
    """
    divergent = source.pool.divergent_bytes()
    source.pool.retire()
    source.session.machine.obs.count("cluster.migrate.out")
    target.pool.fork_worker()
    target.session.machine.obs.count("cluster.migrate.in")
    return {
        "from": source.index,
        "to": target.index,
        "divergent_bytes": divergent,
        "ns": costs.migration_ns(divergent),
    }

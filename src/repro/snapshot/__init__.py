"""CRIU-style μprocess checkpoint/restore (``repro.snapshot``).

μFork's central trick — finding every capability in a μprocess's pages
via memory tags and re-deriving it for a new region — is exactly the
machinery a checkpoint/restore engine needs.  This package serializes a
live μprocess (register file, page bytes + per-granule validity tags,
page permissions, allocator metadata, fd-table policy, signal
dispositions) into the deterministic ``repro.snapshot/v1`` byte format
and restores it into *any* machine — the one it came from or a freshly
booted one — by re-minting every stored capability through the same
relocation engine fork uses (:mod:`repro.core.relocate`).

Entry points:

* :func:`checkpoint` — μprocess → bytes (optionally incremental:
  CoW-divergent refcount-1 pages only, the cluster migration payload);
* :func:`restore` — bytes → a fresh, runnable process on a target OS;
* :func:`restore_into` — apply an incremental snapshot onto an
  existing process forked from the same image (cross-machine worker
  migration).

See docs/SNAPSHOT.md for the executable walkthrough.
"""

from repro.snapshot.engine import (
    SnapshotError,
    checkpoint,
    restore,
    restore_into,
)
from repro.snapshot.format import SCHEMA, decode, encode

__all__ = [
    "SCHEMA",
    "SnapshotError",
    "checkpoint",
    "decode",
    "encode",
    "restore",
    "restore_into",
]

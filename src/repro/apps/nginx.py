"""MiniNginx: a multi-worker HTTP-ish server (paper §5.1, Fig 7).

The master listens on a port and forks N long-lived workers that accept
and serve requests concurrently (U5).  Request handling is a realistic
syscall sequence — accept, recv, parse, send, close — so the per-request
cost decomposes into CPU work and device (I/O) wait; the harness feeds
that decomposition into the core-level event simulation to get
multi-worker throughput, including the single-core "+workers still
help because they yield during I/O" effect the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

from repro.mem.layout import KiB, MiB, ProgramImage

DEFAULT_PORT = 80
RESPONSE_BODY = b"X" * 1024
RESPONSE_HEADER = (
    b"HTTP/1.1 200 OK\r\ncontent-type: text/plain\r\n"
    b"content-length: 1024\r\n\r\n"
)
REQUEST = b"GET /index.html HTTP/1.1\r\nhost: localhost\r\n\r\n"

#: parse + route + build-response compute per request (abstract units)
REQUEST_COMPUTE_UNITS = 34_000


def nginx_image() -> ProgramImage:
    return ProgramImage(
        name="nginx",
        code_size=256 * KiB,
        rodata_size=64 * KiB,
        data_size=64 * KiB,
        got_entries=1024,
        tls_size=16 * KiB,
        heap_size=2 * MiB,
        mmap_size=128 * KiB,
        stack_size=64 * KiB,
    )


@dataclass
class RequestStats:
    """One served request, decomposed for the concurrency model."""

    total_ns: int
    io_wait_ns: int

    @property
    def cpu_ns(self) -> int:
        return max(0, self.total_ns - self.io_wait_ns)


class MiniNginx:
    """Master process driver.

    With ``docroot`` set, workers serve static files from the ram-disk
    (open/read/close per request, like real nginx); otherwise they send
    the canned response (the calibrated Fig 7 configuration).
    """

    def __init__(self, ctx: Any, port: int = DEFAULT_PORT,
                 docroot: str = None) -> None:
        self.ctx = ctx
        self.port = port
        self.docroot = docroot
        self.listen_fd = ctx.syscall("listen", port)
        self.workers: List[Any] = []

    def publish(self, name: str, content: bytes) -> None:
        """Write a file into the docroot (master-side setup)."""
        from repro.kernel.vfs import O_CREAT, O_TRUNC, O_WRONLY
        if self.docroot is None:
            raise ValueError("no docroot configured")
        if not self.ctx.os.ramdisk.exists(self.docroot):
            self.ctx.syscall("mkdir", self.docroot)
        fd = self.ctx.syscall("open", f"{self.docroot}/{name}",
                              O_CREAT | O_TRUNC | O_WRONLY)
        self.ctx.write_bytes(fd, content)
        self.ctx.syscall("close", fd)

    def fork_workers(self, count: int) -> List[Any]:
        """Fork ``count`` worker μprocesses; they inherit the listening
        socket through the duplicated fd table (the fork-for-concurrency
        pattern, U2/U5)."""
        for _ in range(count):
            worker_ctx = self.ctx.fork()
            self.workers.append(worker_ctx)
        return self.workers

    def serve_one(self, worker_ctx: Any) -> RequestStats:
        """One worker serves one already-pending connection."""
        machine = worker_ctx.os.machine
        io_before = (machine.clock.bucket_ns("net_packet")
                     + machine.clock.bucket_ns("net_syn"))
        with machine.clock.measure() as watch:
            conn_fd = worker_ctx.syscall("accept", self.listen_fd)
            request = worker_ctx.recv_bytes(conn_fd, 4096)
            assert request.startswith(b"GET "), "malformed request"
            worker_ctx.compute(REQUEST_COMPUTE_UNITS)
            body = self._body_for(worker_ctx, request)
            header = (
                b"HTTP/1.1 200 OK\r\ncontent-type: text/plain\r\n"
                + b"content-length: %d\r\n\r\n" % len(body)
            )
            worker_ctx.send_bytes(conn_fd, header + body)
            worker_ctx.syscall("close", conn_fd)
        io_after = (machine.clock.bucket_ns("net_packet")
                    + machine.clock.bucket_ns("net_syn"))
        return RequestStats(total_ns=watch.elapsed_ns,
                            io_wait_ns=io_after - io_before)

    def _body_for(self, worker_ctx: Any, request: bytes) -> bytes:
        """Canned body, or a real ram-disk read when a docroot is set."""
        from repro.errors import FileNotFound
        from repro.kernel.vfs import O_RDONLY
        if self.docroot is None:
            return RESPONSE_BODY
        path = request.split(b" ", 2)[1].decode().lstrip("/")
        full = f"{self.docroot}/{path}"
        try:
            size = worker_ctx.syscall("stat", full)
            fd = worker_ctx.syscall("open", full, O_RDONLY)
        except FileNotFound:
            return b"404 not found"
        body = worker_ctx.read_bytes(fd, size)
        worker_ctx.syscall("close", fd)
        return body

    def shutdown(self) -> None:
        for worker_ctx in self.workers:
            if worker_ctx.proc.alive:
                worker_ctx.exit(0)
                self.ctx.wait(worker_ctx.pid)
        self.workers.clear()


class WrkClient:
    """A wrk-like closed-loop client issuing requests from a separate
    process (so server syscalls and client syscalls are distinct)."""

    def __init__(self, ctx: Any, port: int = DEFAULT_PORT) -> None:
        self.ctx = ctx
        self.port = port

    def issue(self) -> int:
        """Open a connection and push one request; returns the fd (the
        server accepts it afterwards)."""
        fd = self.ctx.syscall("connect", self.port)
        self.ctx.send_bytes(fd, REQUEST)
        return fd

    def complete(self, fd: int) -> bytes:
        response = self.ctx.recv_bytes(fd, 4096)
        assert response.startswith(b"HTTP/1.1 200"), "bad response"
        self.ctx.syscall("close", fd)
        return response

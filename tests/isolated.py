"""Run a fork-heavy snippet in an isolated process group.

The pattern (borrowed from pytest-isolated's subprocess execution
model) is what keeps the host-oracle tests from ever wedging the
suite: the snippet runs in its own session — so its whole fork tree
shares one process group — under a hard wall-clock timeout; on overrun
the *group* gets SIGKILL, which reaches orphans even after they have
been reparented to init, and the child is always reaped.  Crashes are
reported with the signal name, not just a return code.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from dataclasses import dataclass

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


@dataclass
class IsolatedResult:
    returncode: int
    stdout: str
    stderr: str
    timed_out: bool

    @property
    def crashed(self) -> bool:
        return self.returncode < 0

    @property
    def crash_reason(self) -> str:
        """Human-readable outcome, pytest-isolated style."""
        if self.timed_out:
            return "timed out (process group killed)"
        if self.returncode < 0:
            try:
                name = signal.Signals(-self.returncode).name
            except ValueError:
                name = f"signal {-self.returncode}"
            return f"crashed with {name}"
        return f"exited with code {self.returncode}"


def run_isolated(code: str, timeout: float = 20.0,
                 pythonpath: str = REPO_SRC) -> IsolatedResult:
    """Execute ``code`` with the interpreter in a new session; kill the
    whole process group on timeout and reap before returning."""
    env = dict(os.environ)
    env["PYTHONPATH"] = pythonpath
    proc = subprocess.Popen(
        [sys.executable, "-c", code],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        start_new_session=True,
        text=True,
        env=env,
    )
    try:
        out, err = proc.communicate(timeout=timeout)
        return IsolatedResult(proc.returncode, out, err, timed_out=False)
    except subprocess.TimeoutExpired:
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
        out, err = proc.communicate()
        return IsolatedResult(proc.returncode, out, err, timed_out=True)

"""Figure 8: fork latency and memory usage for a minimal (hello world)
process: μFork vs CheriBSD vs Nephele.

Paper: 54 μs vs 197 μs vs 10.7 ms fork latency (3.7× / 198×), and
0.13 MB vs 0.29 MB vs 1.6 MB per-process memory (2.2× / 12.3×).
"""

from conftest import run_once

from repro.harness.experiments import fig8_hello_fork


def test_fig8_hello_fork(benchmark, record_figure):
    rows = run_once(benchmark, fig8_hello_fork)
    record_figure(
        "fig8_hello_fork", rows,
        "Figure 8: hello-world fork latency (us) and memory (MB)",
    )
    by_system = {row["system"]: row for row in rows}

    ufork = by_system["ufork"]
    cheribsd = by_system["cheribsd"]
    nephele = by_system["nephele"]

    # latency: μFork < CheriBSD < Nephele, by the paper's factors
    assert ufork["fork_latency_us"] < cheribsd["fork_latency_us"]
    assert cheribsd["fork_latency_us"] < nephele["fork_latency_us"]
    factor_cheribsd = cheribsd["fork_latency_us"] / ufork["fork_latency_us"]
    factor_nephele = nephele["fork_latency_us"] / ufork["fork_latency_us"]
    assert 2.0 < factor_cheribsd < 8.0      # paper: 3.7x
    assert 80.0 < factor_nephele < 500.0    # paper: 198x

    # calibration sanity: within 2x of the paper's absolute numbers
    assert 27 < ufork["fork_latency_us"] < 108          # paper: 54
    assert 100 < cheribsd["fork_latency_us"] < 400      # paper: 197
    assert 5_000 < nephele["fork_latency_us"] < 22_000  # paper: 10,700

    # memory: same ordering, order-of-magnitude factors
    assert ufork["memory_mb"] < cheribsd["memory_mb"] < nephele["memory_mb"]
    assert nephele["memory_mb"] / ufork["memory_mb"] > 5   # paper: 12.3x
    assert 0.05 < ufork["memory_mb"] < 0.3                 # paper: 0.13
    assert 1.0 < nephele["memory_mb"] < 2.5                # paper: 1.6

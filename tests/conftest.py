"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.machine import Machine
from repro.params import CostModel, MachineConfig


@pytest.fixture
def machine() -> Machine:
    """A fresh default machine per test."""
    return Machine()


@pytest.fixture
def small_machine() -> Machine:
    """A machine with tiny DRAM, handy for out-of-memory paths."""
    config = MachineConfig(dram_bytes=64 * 4096)
    return Machine(config=config, costs=CostModel.morello())

"""IsoUnikOS: an Iso-Unik-like baseline (Table 1's "page-tables" class).

Iso-UniK (Li et al., Cybersecurity 2020) supports multi-process
unikernels by *retrofitting multiple address spaces back into the
SASOS*: each process gets its own page table (with MPK-style domain
protection), and fork duplicates it like a classic kernel.  The paper's
critique (§2.3): this keeps isolation and self-containedness but gives
up the single address space — and with it the cheap context switches —
so it sits between μFork and a full monolithic OS:

* syscalls stay cheap (same-EL unikernel: no trap);
* fork pays per-PTE duplication plus a lighter-than-monolithic fixed
  path;
* context switches between processes flush the TLB again (the
  lightweightness loss the paper calls out);
* statically linked (unikernel): no shared libraries, and no
  revocation-heavy allocator re-touch in children.

Not part of the paper's measured figures (it evaluates CheriBSD and
Nephele); included to cover Table 1's remaining design class and used
by the beyond-paper baseline-spectrum benchmark.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.monolithic import MonolithicOS
from repro.kernel.syscalls import IsolationConfig
from repro.machine import Machine


class IsoUnikOS(MonolithicOS):
    """Iso-Unik-like: multiple page tables inside a unikernel."""

    kind = "isounik"

    KERNEL_PROC_OVERHEAD = 64 * 1024
    FORK_FIXED_ATTR = "isounik_fork_fixed_ns"
    MAPS_LIBRARIES = False
    #: unikernel allocator: no post-fork arena re-touching
    allocator_child_touch_fraction = 0.0

    def __init__(self, machine: Optional[Machine] = None,
                 isolation: Optional[IsolationConfig] = None) -> None:
        super().__init__(
            machine=machine,
            isolation=isolation or IsolationConfig.fault(),
            trapless_syscalls=True,
        )

"""Span-based profiling of simulated time.

A span is a named ``with`` region; every nanosecond the
:class:`~repro.clock.SimClock` advances while a span is open is
attributed to the *innermost* open span as **self time**.  Spans nest
into a tree keyed by dotted paths (``syscall.fork`` →
``syscall.fork.copy_pages``), so one fork's cost decomposes exactly the
way the paper's cost model does: each node's total is its self time
plus its children's totals, and the root's total equals the clock time
elapsed while observation was on.

Usage::

    with obs.span("fork"):
        with obs.span("copy_pages"):
            machine.charge(640, "page_copy")   # -> fork.copy_pages self time
        machine.charge(100)                    # -> fork self time
    obs.span_tree.root.total_ns                # == 740
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple


class SpanNode:
    """One node of the span tree: aggregate stats for a dotted path."""

    __slots__ = ("name", "path", "count", "self_ns", "children")

    def __init__(self, name: str, path: str) -> None:
        self.name = name
        self.path = path
        #: number of times a span with this path was entered
        self.count = 0
        #: simulated ns attributed while this was the innermost open span
        self.self_ns = 0
        self.children: Dict[str, "SpanNode"] = {}

    @property
    def total_ns(self) -> int:
        """Self time plus all descendants' time."""
        return self.self_ns + sum(
            child.total_ns for child in self.children.values()
        )

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            path = f"{self.path}.{name}" if self.path else name
            node = self.children[name] = SpanNode(name, path)
        return node

    def walk(self, depth: int = 0) -> Iterator[Tuple[int, "SpanNode"]]:
        """Depth-first (depth, node) traversal, children name-sorted."""
        yield depth, self
        for name in sorted(self.children):
            yield from self.children[name].walk(depth + 1)

    def export(self) -> Dict:
        """JSON-ready form (see docs/OBSERVABILITY.md)."""
        return {
            "name": self.name,
            "count": self.count,
            "self_ns": self.self_ns,
            "total_ns": self.total_ns,
            "children": [self.children[name].export()
                         for name in sorted(self.children)],
        }


class SpanTree:
    """The aggregate span tree plus the stack of currently open spans.

    The root node is anonymous: time that advances while *no* span is
    open lands in its self time, so the invariant ``root.total_ns ==
    observed clock time`` holds regardless of instrumentation coverage.
    """

    def __init__(self) -> None:
        self.root = SpanNode("", "")
        self._stack: List[SpanNode] = []

    # -- attribution (called from the clock observer) -------------------

    def attribute(self, ns: int) -> None:
        node = self._stack[-1] if self._stack else self.root
        node.self_ns += ns

    # -- open/close ------------------------------------------------------

    def open(self, name: str) -> SpanNode:
        parent = self._stack[-1] if self._stack else self.root
        node = parent.child(name)
        node.count += 1
        self._stack.append(node)
        return node

    def close(self, node: SpanNode) -> None:
        if not self._stack or self._stack[-1] is not node:
            raise RuntimeError(
                f"span {node.path!r} closed out of order")
        self._stack.pop()

    @property
    def depth(self) -> int:
        return len(self._stack)

    @property
    def current_path(self) -> str:
        return self._stack[-1].path if self._stack else ""

    def node(self, path: str) -> Optional[SpanNode]:
        """Look up a node by dotted path (None if never opened).

        Span *names* may themselves contain dots (``syscall.fork`` is
        one span), so resolution is longest-child-name-first rather
        than a naive split on every dot.
        """
        node = self.root
        remaining = path
        while remaining:
            exact = node.children.get(remaining)
            if exact is not None:
                return exact
            match = None
            for name, child in node.children.items():
                if remaining.startswith(name + ".") and (
                        match is None or len(name) > len(match[0])):
                    match = (name, child)
            if match is None:
                return None
            node = match[1]
            remaining = remaining[len(match[0]) + 1:]
        return node

    def reset(self) -> None:
        if self._stack:
            raise RuntimeError("cannot reset span tree with open spans")
        self.root = SpanNode("", "")


def format_span_tree(root: SpanNode, total_label: str = "total") -> str:
    """Render a span tree as an indented plain-text breakdown."""
    lines = []
    grand_total = max(1, root.total_ns)
    for depth, node in root.walk():
        label = node.path or f"({total_label})"
        share = 100.0 * node.total_ns / grand_total
        lines.append(
            f"{'  ' * depth}{label:<{max(4, 44 - 2 * depth)}}"
            f"{node.total_ns / 1000.0:>12,.1f} us"
            f"{node.self_ns / 1000.0:>12,.1f} us"
            f"{node.count:>8}x"
            f"{share:>7.1f}%"
        )
    header = (f"{'span':<44}{'total':>15}{'self':>12}"
              f"{'count':>9}{'share':>8}")
    return "\n".join([header, "-" * len(header)] + lines)

"""The SMP workload runner behind ``python -m repro.harness smp``.

Boots a machine with N online CPUs and drives one of three workloads
through the :class:`~repro.smp.exec.SmpExecutor`:

* ``faas`` — the Fig 6 zygote: per-CPU worker threads each fork the
  warm runtime, run ``float_operation`` in the child and reap it.  Pure
  CPU, so simulated throughput scales with cores until steal/IPI
  overhead bites.
* ``nginx`` — the Fig 7 server: ``2 × N`` forked worker μprocesses
  serve closed-loop requests; each step returns its device wait so
  workers overlap I/O even on one core.
* ``forkbench`` — the §2.2 lightweightness argument: back-to-back
  fork/exit cycles from a *single-threaded* parent on μFork vs the
  monolithic baseline.  μFork consults the μprocess CPU footprint and
  sends **zero** shootdown IPIs; the monolithic kernel conservatively
  broadcasts to every other online CPU, so its fork cost grows with
  ``num_cpus`` while μFork's stays flat (docs/COSTMODEL.md).

Everything is a pure function of ``(seed, num_cpus, workload,
requests, mix)``: dispatch order, steal victims and the chaos schedule
are all deterministic, so two same-parameter runs export byte-identical
``repro.obs/v1`` sidecars (tests/test_smp_determinism.py).

Like :mod:`repro.chaos.runner`, this module imports the full OS stack
and therefore is *not* re-exported from :mod:`repro.smp` (which
:mod:`repro.machine` imports).
"""

from __future__ import annotations

import hashlib
import json
import os as _os
from typing import Any, Dict, Optional

#: schema tag for the summary dict / ``*.smp.json`` sidecar
RUN_SCHEMA = "repro.smp.run/v1"

WORKLOADS = ("faas", "nginx", "forkbench")

#: the CLI's default core sweep (no ``--cpus``)
DEFAULT_SWEEP = (1, 2, 4, 8)


def run_smp(seed: int = 7, num_cpus: int = 4, requests: int = 64,
            workload: str = "faas", mix: Optional[str] = None,
            obs_dir: Optional[str] = None) -> Dict[str, Any]:
    """Run one SMP workload; returns the JSON-ready summary dict.

    With ``obs_dir`` set, writes two sidecars there:
    ``smp-<seed>-c<num_cpus>.obs.json`` (the merged ``repro.obs/v1``
    metrics export) and ``...smp.json`` (this summary).
    """
    from repro.obs import obs_session, to_json, write_export

    if workload not in WORKLOADS:
        raise ValueError(f"unknown SMP workload {workload!r}; "
                         f"choose from {WORKLOADS}")
    if num_cpus < 1:
        raise ValueError("num_cpus must be >= 1")

    with obs_session() as session:
        if workload == "forkbench":
            detail = _run_forkbench(seed, num_cpus, requests, mix)
        elif workload == "nginx":
            detail = _run_nginx(seed, num_cpus, requests, mix)
        else:
            detail = _run_faas(seed, num_cpus, requests, mix)
        export = session.export()

    summary: Dict[str, Any] = {
        "schema": RUN_SCHEMA,
        "seed": seed,
        "num_cpus": num_cpus,
        "workload": workload,
        "requests": requests,
        "mix": mix or "",
    }
    summary.update(detail)
    summary["obs_export_sha256"] = hashlib.sha256(
        to_json(export).encode("utf-8")).hexdigest()

    if obs_dir is not None:
        _os.makedirs(obs_dir, exist_ok=True)
        stem = f"smp-{seed}-c{num_cpus}"
        write_export(export, _os.path.join(obs_dir, f"{stem}.obs.json"))
        from repro.harness.reportio import write_report
        write_report(summary, _os.path.join(obs_dir, f"{stem}.smp.json"))
    return summary


# ----------------------------------------------------------------------
# Shared plumbing
# ----------------------------------------------------------------------

def _boot_ufork(seed: int, num_cpus: int, mix: Optional[str]):
    """Machine + UForkOS (+ optional chaos engine, paused for boot)."""
    from repro.core import IsolationConfig, UForkOS
    from repro.machine import Machine

    machine = Machine(seed=seed, num_cpus=num_cpus)
    engine = _attach_chaos(machine, seed, mix)
    with engine.paused():
        os_ = UForkOS(machine=machine, isolation=IsolationConfig.fault())
    return machine, os_, engine


def _attach_chaos(machine: Any, seed: int, mix: Optional[str]):
    from repro.chaos.engine import NULL_CHAOS, ChaosEngine, FaultMix

    if mix is None:
        return NULL_CHAOS
    engine = ChaosEngine(seed=seed, mix=FaultMix.parse(mix))
    engine.attach(machine)
    return engine


def _machine_stats(machine: Any, ex: Any) -> Dict[str, Any]:
    """The per-run SMP bookkeeping every workload reports."""
    ex.export_cpu_metrics()
    counters = machine.counters
    per_cpu = [
        {"cpu": cpu.core_id, "busy_ns": cpu.busy_ns,
         "idle_ns": cpu.idle_ns, "steps": cpu.steps}
        for cpu in machine.cpus
    ]
    return {
        "makespan_ns": ex.makespan_ns,
        "steps_run": ex.steps_run,
        "steals": counters.get("work_steal"),
        "ipi": {
            "sent": machine.ipi.sent,
            "acked": machine.ipi.acked,
            "dropped": machine.ipi.dropped,
            "resent": machine.ipi.resent,
        },
        "shootdown_broadcasts": counters.get("tlb_shootdown_broadcast"),
        "shootdown_ipis": counters.get("tlb_shootdown_ipis"),
        "per_cpu": per_cpu,
    }


def _chaos_stats(engine: Any) -> Dict[str, Any]:
    fired = getattr(engine, "fired", {})
    recovered = getattr(engine, "recovered", {})
    return {
        "injected": sum(fired.values()),
        "injected_by_point": dict(sorted(fired.items())),
        "recovered": sum(recovered.values()),
    }


# ----------------------------------------------------------------------
# faas: per-CPU workers forking the warm zygote (Fig 6 under SMP)
# ----------------------------------------------------------------------

def _run_faas(seed: int, num_cpus: int, requests: int,
              mix: Optional[str]) -> Dict[str, Any]:
    from repro.apps.faas import ZygoteRuntime, faas_image
    from repro.apps.guest import GuestContext
    from repro.chaos.runner import kernel_state_digest
    from repro.errors import SimError
    from repro.smp.exec import SmpExecutor

    machine, os_, engine = _boot_ufork(seed, num_cpus, mix)
    with engine.paused():
        ctx = GuestContext(os_, os_.spawn(faas_image(), "zygote"))
        runtime = ZygoteRuntime(ctx)
        runtime.warm()

    ex = SmpExecutor(os_)
    remaining = [requests]
    completed = [0]
    failures = [0]

    def make_worker(worker_task):
        def step():
            if remaining[0] <= 0:
                return None
            remaining[0] -= 1
            try:
                result = runtime.handle_request()
                assert result.ok
                completed[0] += 1
            except SimError:
                # a fault escaped every recovery path; the kernel is
                # already consistent (rollback), the request is lost
                failures[0] += 1
                machine.obs.count("smp.run.request_failures")
            ex.submit(worker_task, step)
            return None
        return step

    zygote_regs = ctx.proc.main_task().registers
    for _ in range(num_cpus):
        worker = ctx.proc.add_task()
        worker.registers.copy_from(zygote_regs)
        ex.submit(worker, make_worker(worker))
    makespan = ex.run()

    stats = _machine_stats(machine, ex)
    stats.update(_chaos_stats(engine))
    stats["completed"] = completed[0]
    stats["request_failures"] = failures[0]
    stats["throughput_rps"] = (
        completed[0] / (makespan / 1e9) if makespan > 0 else 0.0
    )
    stats["kernel_state_digest"] = kernel_state_digest(os_)
    return stats


# ----------------------------------------------------------------------
# nginx: forked worker μprocesses overlapping I/O (Fig 7 under SMP)
# ----------------------------------------------------------------------

def _run_nginx(seed: int, num_cpus: int, requests: int,
               mix: Optional[str]) -> Dict[str, Any]:
    from repro.apps.guest import GuestContext
    from repro.apps.nginx import MiniNginx, WrkClient, nginx_image
    from repro.chaos.runner import kernel_state_digest
    from repro.errors import SimError
    from repro.smp.exec import SmpExecutor

    machine, os_, engine = _boot_ufork(seed, num_cpus, mix)
    worker_count = 2 * num_cpus
    with engine.paused():
        master = GuestContext(os_, os_.spawn(nginx_image(), "nginx"))
        server = MiniNginx(master)
        workers = server.fork_workers(worker_count)
        client_ctx = master.fork()
        client = WrkClient(client_ctx)

    ex = SmpExecutor(os_)
    remaining = [requests]
    completed = [0]
    failures = [0]
    io_wait_total = [0]

    def make_worker(worker_ctx, worker_task):
        def step():
            if remaining[0] <= 0:
                return None
            remaining[0] -= 1
            io_ns = 0.0
            try:
                fd = client.issue()
                stats = server.serve_one(worker_ctx)
                client.complete(fd)
                completed[0] += 1
                io_ns = float(stats.io_wait_ns)
                io_wait_total[0] += stats.io_wait_ns
            except SimError:
                failures[0] += 1
                machine.obs.count("smp.run.request_failures")
            ex.submit(worker_task, step)
            return io_ns
        return step

    for worker_ctx in workers:
        task = worker_ctx.proc.main_task()
        ex.submit(task, make_worker(worker_ctx, task))
    makespan = ex.run()

    with engine.paused():
        server.shutdown()
        if client_ctx.proc.alive:
            client_ctx.exit(0)
            master.wait(client_ctx.pid)

    stats = _machine_stats(machine, ex)
    stats.update(_chaos_stats(engine))
    stats["workers"] = worker_count
    stats["completed"] = completed[0]
    stats["request_failures"] = failures[0]
    stats["io_wait_ns"] = io_wait_total[0]
    stats["throughput_rps"] = (
        completed[0] / (makespan / 1e9) if makespan > 0 else 0.0
    )
    stats["kernel_state_digest"] = kernel_state_digest(os_)
    return stats


# ----------------------------------------------------------------------
# forkbench: single-threaded fork cost vs online CPUs (§2.2)
# ----------------------------------------------------------------------

def _run_forkbench(seed: int, num_cpus: int, requests: int,
                   mix: Optional[str]) -> Dict[str, Any]:
    from repro.apps.guest import GuestContext
    from repro.apps.hello import hello_world_image
    from repro.baselines.monolithic import MonolithicOS
    from repro.core import IsolationConfig, UForkOS
    from repro.machine import Machine

    systems: Dict[str, Any] = {}
    for name in ("ufork", "monolithic"):
        machine = Machine(seed=seed, num_cpus=num_cpus)
        engine = _attach_chaos(machine, seed, mix)
        with engine.paused():
            if name == "ufork":
                os_ = UForkOS(machine=machine,
                              isolation=IsolationConfig.fault())
            else:
                os_ = MonolithicOS(machine=machine)
            ctx = GuestContext(os_, os_.spawn(hello_world_image(), name))
        before = machine.clock.now_ns
        for _ in range(requests):
            child = ctx.fork()
            child.exit(0)
            ctx.wait(child.pid)
        elapsed = machine.clock.now_ns - before
        systems[name] = {
            "fork_cycles": requests,
            "total_ns": elapsed,
            "per_fork_ns": elapsed / requests if requests else 0.0,
            "shootdown_ipis": machine.counters.get("tlb_shootdown_ipis"),
            "ipi_sent": machine.ipi.sent,
        }
    mono = systems["monolithic"]["per_fork_ns"]
    uf = systems["ufork"]["per_fork_ns"]
    return {
        "systems": systems,
        "fork_gap": mono / uf if uf else 0.0,
    }


# ----------------------------------------------------------------------
# CLI rendering
# ----------------------------------------------------------------------

def format_summary(summary: Dict[str, Any]) -> str:
    """Render a run summary for the CLI."""
    head = (f"smp run: workload={summary['workload']} "
            f"cpus={summary['num_cpus']} seed={summary['seed']} "
            f"requests={summary['requests']}")
    if summary["mix"]:
        head += f" mix={summary['mix']}"
    lines = [head]
    if summary["workload"] == "forkbench":
        for name, sys_stats in summary["systems"].items():
            lines.append(
                f"  {name}: {sys_stats['per_fork_ns'] / 1e3:.1f} us/fork, "
                f"{sys_stats['shootdown_ipis']} shootdown IPIs "
                f"({sys_stats['fork_cycles']} cycles)")
        lines.append(f"  fork gap (monolithic/ufork): "
                     f"{summary['fork_gap']:.2f}x")
        return "\n".join(lines)
    ipi = summary["ipi"]
    lines += [
        f"  completed={summary['completed']} "
        f"failures={summary['request_failures']} "
        f"makespan={summary['makespan_ns'] / 1e6:.2f} ms "
        f"throughput={summary['throughput_rps']:.0f} req/s",
        f"  steals={summary['steals']} "
        f"ipis sent={ipi['sent']} acked={ipi['acked']} "
        f"dropped={ipi['dropped']} "
        f"shootdowns={summary['shootdown_broadcasts']} "
        f"({summary['shootdown_ipis']} IPIs)",
    ]
    if summary.get("injected"):
        lines.append(f"  chaos: injected={summary['injected']} "
                     f"recovered={summary['recovered']}")
    for cpu in summary["per_cpu"]:
        lines.append(
            f"  cpu{cpu['cpu']}: busy={cpu['busy_ns'] / 1e6:.2f} ms "
            f"idle={cpu['idle_ns'] / 1e6:.2f} ms steps={cpu['steps']}")
    lines.append(f"  kernel_state_digest="
                 f"{summary['kernel_state_digest'][:16]}…")
    return "\n".join(lines)

"""Tasks, μprocesses and PIDs.

In μFork "each thread is associated with a μprocess ID; each μprocess
may have many threads" (§3.4, block 1).  A :class:`Task` is one thread
of execution with its own capability register file; a :class:`Process`
is the kernel-side process object (task group, memory region, FD table,
wait/exit state) shared by the SASOS and — with a per-process address
space attached — by the monolithic baseline.
"""

from __future__ import annotations

from enum import Enum, auto
from typing import Any, Dict, FrozenSet, List, Optional, Set

from repro.cheri.regfile import RegisterFile
from repro.errors import NoSuchProcess


class TaskState(Enum):
    RUNNABLE = auto()
    BLOCKED = auto()
    EXITED = auto()


class Task:
    """One thread of execution.

    ``__slots__`` keeps the per-task footprint flat and attribute loads
    cheap — the scheduler touches ``state``/``affinity``/``last_cpu`` on
    every pick, so tasks are the hottest objects in the simulation.
    """

    __slots__ = ("tid", "process", "registers", "state", "affinity",
                 "last_cpu")

    _next_tid = 1

    def __init__(self, process: "Process") -> None:
        self.tid = Task._next_tid
        Task._next_tid += 1
        self.process = process
        self.registers = RegisterFile()
        self.state = TaskState.RUNNABLE
        #: CPU-affinity mask (``None`` = may run on any online CPU)
        self.affinity: Optional[FrozenSet[int]] = None
        #: last CPU this task was dispatched on — feeds the μprocess
        #: CPU-footprint that bounds fork-time TLB shootdowns (§2.2)
        self.last_cpu: int = 0

    def can_run_on(self, cpu: int) -> bool:
        return self.affinity is None or cpu in self.affinity

    def pin(self, *cpus: int) -> None:
        """Restrict this task to the given CPUs (sched_setaffinity)."""
        if not cpus:
            raise ValueError("affinity mask cannot be empty")
        self.affinity = frozenset(cpus)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task(tid={self.tid}, pid={self.process.pid}, {self.state.name})"


class Process:
    """Kernel-side process object (a μprocess on the SASOS).

    The attributes every kernel touches live in ``__slots__``; the
    trailing ``__dict__`` slot keeps the object open for the subsystem
    attachments that hang extra state off a process at runtime (signal
    state, shm bindings, dynamic-library capabilities, …).
    """

    __slots__ = ("pid", "name", "parent", "children", "tasks",
                 "exit_status", "reaped", "region_base", "region_top",
                 "layout", "allocator", "space", "fdtable",
                 "syscall_gate", "__dict__")

    def __init__(self, pid: int, name: str,
                 parent: Optional["Process"] = None) -> None:
        self.pid = pid
        self.name = name
        self.parent = parent
        self.children: List[Process] = []
        if parent is not None:
            parent.children.append(self)
        self.tasks: List[Task] = []
        #: exit status once exited; ``None`` while alive
        self.exit_status: Optional[int] = None
        self.reaped = False
        # Memory attachments, filled in by the owning OS:
        #: contiguous region (SASOS) — (base, top)
        self.region_base: int = 0
        self.region_top: int = 0
        #: resolved segment layout
        self.layout: Any = None
        #: per-process guest heap allocator
        self.allocator: Any = None
        #: per-process address space (monolithic baseline only)
        self.space: Any = None
        #: per-process file descriptor table
        self.fdtable: Any = None
        #: sealed syscall-entry capability handed out at load (SASOS)
        self.syscall_gate: Any = None

    # -- threads --------------------------------------------------------

    def main_task(self) -> Task:
        if not self.tasks:
            raise NoSuchProcess(f"process {self.pid} has no tasks")
        return self.tasks[0]

    def add_task(self) -> Task:
        task = Task(self)
        self.tasks.append(task)
        return task

    @property
    def registers(self) -> RegisterFile:
        return self.main_task().registers

    def cpu_footprint(self) -> Set[int]:
        """CPUs that may hold TLB state for this process's pages: the
        set of CPUs its threads last ran on.  μFork consults this at
        fork so the shootdown broadcast covers only the μprocess's
        actual footprint instead of every online CPU (§2.2)."""
        return {task.last_cpu for task in self.tasks}

    # -- lifecycle -------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.exit_status is None

    @property
    def region_size(self) -> int:
        return self.region_top - self.region_base

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "alive" if self.alive else f"exited({self.exit_status})"
        return f"Process(pid={self.pid}, {self.name!r}, {status})"


class PidAllocator:
    """Monotonically increasing PID allocation.

    The PID is "stored in a memory location which cannot be modified by
    any μprocess" (§3.5); here the kernel-private Python object plays
    that role — user code never gets a writable capability to it.
    """

    def __init__(self, first_pid: int = 1) -> None:
        self._next = first_pid

    def allocate(self) -> int:
        pid = self._next
        self._next += 1
        return pid


class ProcessTable:
    """pid → process map with lookup helpers."""

    def __init__(self) -> None:
        self._procs: Dict[int, Process] = {}

    def add(self, proc: Process) -> None:
        self._procs[proc.pid] = proc

    def get(self, pid: int) -> Process:
        proc = self._procs.get(pid)
        if proc is None:
            raise NoSuchProcess(f"no process with pid {pid}")
        return proc

    def remove(self, pid: int) -> None:
        self._procs.pop(pid, None)

    def alive(self) -> List[Process]:
        return [p for p in self._procs.values() if p.alive]

    def all(self) -> List[Process]:
        return list(self._procs.values())

    def __len__(self) -> int:
        return len(self._procs)

    def __contains__(self, pid: int) -> bool:
        return pid in self._procs

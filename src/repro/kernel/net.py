"""Loopback networking for the server workloads (Nginx, Redis clients).

Connections are in-memory byte streams with a per-packet device charge
and per-byte copy costs.  A :class:`Listener` models a listening socket
shared by forked workers — exactly the multi-worker accept pattern the
Nginx experiment (Fig 7) exercises.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import BrokenPipe, InvalidArgument, WouldBlock


class _Stream:
    """One direction of a connection."""

    def __init__(self) -> None:
        self.buffer = bytearray()
        self.open = True


class Connection:
    """A bidirectional loopback stream; each side holds one endpoint."""

    def __init__(self, machine: Any) -> None:
        self.machine = machine
        self._client_to_server = _Stream()
        self._server_to_client = _Stream()
        self.client = Endpoint(self, outbound=self._client_to_server,
                               inbound=self._server_to_client)
        self.server = Endpoint(self, outbound=self._server_to_client,
                               inbound=self._client_to_server)

    def _charge(self, n: int) -> None:
        self.machine.charge(self.machine.costs.net_packet_ns, "net_packet")
        self.machine.charge(
            self.machine.costs.io_copy_ns_per_byte * n, "net_io"
        )
        obs = self.machine.obs
        if obs.enabled:
            obs.count("kernel.net.packets")
            obs.count("kernel.net.bytes", n)


class Endpoint:
    """One side of a connection, installable in an FD table."""

    def __init__(self, conn: Connection, outbound: _Stream,
                 inbound: _Stream) -> None:
        self.conn = conn
        self._outbound = outbound
        self._inbound = inbound

    def send(self, data: bytes) -> int:
        if not self._outbound.open:
            raise BrokenPipe("connection closed")
        machine = self.conn.machine
        if machine.chaos.enabled and len(data) > 1 and \
                machine.chaos.should_fire("kernel.net.short_send"):
            # short send: callers loop on the return count (POSIX)
            data = data[:len(data) // 2]
        self._outbound.buffer.extend(data)
        self.conn._charge(len(data))
        return len(data)

    def recv(self, size: int) -> bytes:
        if not self._inbound.buffer:
            if not self._inbound.open:
                return b""
            raise WouldBlock("no data")
        chunk = bytes(self._inbound.buffer[:size])
        del self._inbound.buffer[:size]
        self.conn._charge(len(chunk))
        return chunk

    def close(self) -> None:
        self._outbound.open = False
        self._inbound.open = False

    # fd-table protocol
    def read(self, desc: Any, size: int) -> bytes:
        return self.recv(size)

    def write(self, desc: Any, data: bytes) -> int:
        return self.send(data)

    def on_last_close(self, desc: Any) -> None:
        self.close()

    @property
    def pending_bytes(self) -> int:
        return len(self._inbound.buffer)


class Listener:
    """A listening socket with an accept queue."""

    def __init__(self, machine: Any, port: int, backlog: int = 128) -> None:
        self.machine = machine
        self.port = port
        self.backlog = backlog
        self._pending: Deque[Connection] = deque()
        self.open = True

    def connect(self) -> Endpoint:
        """Client side: establish a connection (returns client endpoint)."""
        if not self.open:
            raise BrokenPipe(f"listener on port {self.port} closed")
        if len(self._pending) >= self.backlog:
            raise WouldBlock("accept backlog full")
        conn = Connection(self.machine)
        self._pending.append(conn)
        self.machine.charge(self.machine.costs.net_packet_ns, "net_syn")
        self.machine.obs.count("kernel.net.connections")
        return conn.client

    def accept(self) -> Endpoint:
        """Server side: accept one pending connection."""
        if not self._pending:
            raise WouldBlock("no pending connections")
        conn = self._pending.popleft()
        return conn.server

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # fd-table protocol (a listener fd is not readable/writable)
    def read(self, desc: Any, size: int) -> bytes:
        raise InvalidArgument("read on listening socket")

    def write(self, desc: Any, data: bytes) -> int:
        raise InvalidArgument("write on listening socket")

    def on_last_close(self, desc: Any) -> None:
        self.open = False


class NetworkStack:
    """Port → listener registry (one per machine/OS)."""

    def __init__(self, machine: Any) -> None:
        self.machine = machine
        self._listeners: dict = {}

    def listen(self, port: int, backlog: int = 128) -> Listener:
        if port in self._listeners and self._listeners[port].open:
            raise InvalidArgument(f"port {port} in use")
        listener = Listener(self.machine, port, backlog)
        self._listeners[port] = listener
        return listener

    def connect(self, port: int) -> Endpoint:
        listener = self._listeners.get(port)
        if listener is None or not listener.open:
            raise BrokenPipe(f"connection refused on port {port}")
        return listener.connect()

    def listener(self, port: int) -> Optional[Listener]:
        return self._listeners.get(port)

"""Tests for the CPU core and TLB cost models."""

import pytest

from repro.hw.cpu import Core
from repro.kernel.task import Process


class TestCore:
    def make_task(self):
        return Process(1, "p").add_task()

    def test_switch_same_space_cost(self, machine):
        core = machine.cores[0]
        before = machine.clock.now_ns
        core.switch_to(self.make_task(), same_address_space=True)
        assert machine.clock.now_ns - before == \
            int(machine.costs.context_switch_sas_ns)
        assert core.domain_switches == 1

    def test_switch_cross_space_cost(self, machine):
        core = machine.cores[0]
        before = machine.clock.now_ns
        core.switch_to(self.make_task(), same_address_space=False)
        assert machine.clock.now_ns - before == \
            int(machine.costs.context_switch_mas_ns)

    def test_registers_of_current_task(self, machine):
        core = machine.cores[0]
        task = self.make_task()
        core.switch_to(task, same_address_space=True)
        assert core.registers is task.registers

    def test_idle_core_has_no_registers(self, machine):
        with pytest.raises(RuntimeError):
            machine.cores[1].registers

    def test_machine_has_configured_core_count(self, machine):
        assert len(machine.cores) == machine.config.cores
        assert [core.core_id for core in machine.cores] == [0, 1, 2, 3]


class TestTLB:
    def test_flush_charges_and_counts(self, machine):
        before = machine.clock.now_ns
        machine.tlb.flush()
        machine.tlb.flush()
        assert machine.tlb.flush_count == 2
        assert machine.counters.get("tlb_flush") == 2
        assert machine.clock.now_ns - before == \
            2 * int(machine.costs.tlb_flush_ns)

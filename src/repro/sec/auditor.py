"""The capability-flow auditor.

:func:`audit_cap_flow` is the security half of the §4.2 isolation
invariant: at any trap or preemption point, no live register and no
tagged memory granule may hold a capability whose *provenance* crosses
a μprocess boundary.  It generalises :func:`repro.core.audit
.audit_isolation` in three ways:

* it works on every OS kind — the walk goes through ``os.space_of``,
  so the monolithic baseline (per-process page tables) is audited with
  the same code as the SASOS kernels;
* sentry capabilities are *policed* rather than exempted: the only
  sanctioned sentry is the μprocess's own syscall gate, bit-equal in
  (base, length, cursor) — a sentry minted for some other entry point
  is exactly the forged-gate attack;
* every violation message is annotated with the capability's
  provenance: which μprocess the authority was minted for, and the
  derivation chain (spawn/fork/migrate/restore events, i.e. the
  ``relocate_cap`` sweeps) that produced it.

The conform explorer and farm run this at every scheduling step via
:func:`repro.conform.invariants.check_invariants`, so interleaving
search doubles as an isolation-violation hunt.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.cheri.capability import Capability
from repro.core.relocate import derivation_chain, flow_log
from repro.core.strategies import ShareNote

__all__ = ["audit_cap_flow", "provenance_of"]


def _confined(cap: Capability, base: int, top: int) -> bool:
    return base <= cap.base and cap.top <= top


def provenance_of(os_: Any, cap: Capability) -> str:
    """Attribute a capability to the μprocess its span was minted for.

    Resolution order: a live μprocess whose region covers the span,
    then the flow log (covers already-reaped μprocesses whose authority
    should be dead), then "no recorded mint" — the fingerprint of a
    forged or kernel-leaked capability.
    """
    if not cap.valid:
        return "no authority (invalid)"
    if cap.is_sentry:
        return "sealed kernel entry sentry"
    for proc in os_.procs.alive():
        if _confined(cap, proc.region_base, proc.region_top):
            chain = derivation_chain(os_.machine, proc.pid)
            return f"minted for pid {proc.pid} via {chain}"
    for event, _src, dst, base, top, _detail in reversed(flow_log(os_.machine)):
        if _confined(cap, base, top):
            return (f"minted for dead pid {dst} (last {event}); "
                    f"authority should have died with it")
    return "no recorded mint (forged or kernel-internal span)"


def _audit_cap(os_: Any, proc: Any, cap: Capability, location: str,
               lo: int, hi: int, violations: List[str]) -> None:
    base, top = proc.region_base, proc.region_top
    if not cap.valid:
        return
    if cap.is_sentry:
        gate = getattr(proc, "syscall_gate", None)
        if gate is None:
            violations.append(
                f"pid {proc.pid} @ {location}: sentry capability on a "
                f"trap-entry kernel (no gate was ever minted) [{cap}]")
        elif (cap.base, cap.length, cap.cursor) != (
                gate.base, gate.length, gate.cursor):
            violations.append(
                f"pid {proc.pid} @ {location}: sentry does not match the "
                f"μprocess's own syscall gate [{cap}]")
        return
    if _confined(cap, lo, hi) or _confined(cap, base, top):
        return
    violations.append(
        f"pid {proc.pid} @ {location}: capability escapes the μprocess "
        f"region [{cap}] — provenance: {provenance_of(os_, cap)}")


def audit_cap_flow(os_: Any) -> List[str]:
    """Audit every live μprocess on any OS kind; returns violations.

    Mirrors :func:`repro.core.audit.audit_isolation`'s treatment of
    fork-shared pages (a ``ShareNote`` page legitimately holds the
    donor's capabilities until the strategy's fault handler relocates
    them) and of ``MAP_SHARED`` windows (skipped: the window capability
    carries no LOAD_CAP/STORE_CAP, so tags can never appear there — if
    one does, the smuggling tests fail loudly instead).
    """
    machine = os_.machine
    page = machine.config.page_size
    violations: List[str] = []
    for proc in os_.procs.alive():
        space = os_.space_of(proc)
        base, top = proc.region_base, proc.region_top
        shm_vpns = getattr(proc, "shm_vpns", set())
        for vpn, frame_no, _perms, _cow, raw_note in \
                space.mapped_items(base // page, top // page):
            if vpn in shm_vpns:
                continue
            note = raw_note if isinstance(raw_note, ShareNote) else None
            if note is not None:
                lo, hi = note.regions.parent_base, note.regions.parent_top
            else:
                lo, hi = base, top
            frame = machine.phys.frame(frame_no)
            for offset in frame.tagged_granules():
                cap = frame.load_cap(offset, machine.codec)
                _audit_cap(os_, proc, cap, f"vpn {vpn:#x}+{offset:#x}",
                           lo, hi, violations)
        for task in proc.tasks:
            for name, cap in task.registers.cap_registers():
                _audit_cap(os_, proc, cap, f"register {name}",
                           base, top, violations)
    return violations

"""repro.api — the stable user-facing facade.

One import, one object: a :class:`Session` bundles the machine, the OS
under test, optional observability and optional chaos injection behind
keyword knobs, so experiment code reads as *what* is being measured
instead of *how* the simulator is wired::

    from repro.api import Session

    with Session(strategy="copa", obs=True) as sim:
        parent = sim.spawn()
        child = parent.fork()
        child.exit(0)
        parent.wait(child.pid)
        print(sim.report()["simulated_ns"])

Everything here is a thin veneer over the long-standing constructors
(:class:`repro.machine.Machine`, :class:`repro.core.UForkOS`, ...);
nothing about simulated behaviour changes.  The facade's surface —
names and call signatures — is contract-tested
(``tests/test_api_contract.py``), so accidental breakage of downstream
scripts fails CI.

The old entry points remain importable from here as deprecation shims
(:func:`Machine`, :func:`make_scheduler`) that forward unchanged after
emitting a :class:`DeprecationWarning`; new code should construct a
:class:`Session` instead.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Dict, Optional, TypeVar

__all__ = [
    "OSES",
    "STRATEGIES",
    "ISOLATIONS",
    "Session",
    "Machine",
    "make_scheduler",
]

_T = TypeVar("_T")

#: facade name → OS class path (resolved lazily to keep import light)
OSES = ("ufork", "monolithic", "vmclone", "isounik")
#: facade name → fork copy strategy (μFork §3.8)
STRATEGIES = ("full", "coa", "copa")
#: facade name → isolation preset (μFork §3.6)
ISOLATIONS = ("none", "fault", "full")


def _resolve_os(name: str):
    from repro.baselines import IsoUnikOS, MonolithicOS, VMCloneOS
    from repro.core import UForkOS
    classes = {"ufork": UForkOS, "monolithic": MonolithicOS,
               "vmclone": VMCloneOS, "isounik": IsoUnikOS}
    if name not in classes:
        raise ValueError(f"unknown os {name!r}; choose from {OSES}")
    return classes[name]


def _resolve_strategy(name: str):
    from repro.core import CopyStrategy
    strategies = {"full": CopyStrategy.FULL_COPY, "coa": CopyStrategy.COA,
                  "copa": CopyStrategy.COPA}
    if name not in strategies:
        raise ValueError(
            f"unknown strategy {name!r}; choose from {STRATEGIES}")
    return strategies[name]


def _resolve_isolation(name: str):
    from repro.core import IsolationConfig
    factories = {"none": IsolationConfig.none, "fault": IsolationConfig.fault,
                 "full": IsolationConfig.full}
    if name not in factories:
        raise ValueError(
            f"unknown isolation {name!r}; choose from {ISOLATIONS}")
    return factories[name]()


class Session:
    """One hermetic simulator run: machine + OS + optional obs/chaos.

    Parameters (all keyword-only, all strings/ints so scripts and CLIs
    can pass them through untyped):

    * ``os`` — ``"ufork"`` (default), ``"monolithic"`` (CheriBSD-like),
      ``"vmclone"`` (Nephele-like) or ``"isounik"``;
    * ``strategy`` — fork copy strategy for μFork: ``"full"``,
      ``"coa"`` or ``"copa"`` (default; ignored by the baselines);
    * ``isolation`` — ``"none"``, ``"fault"`` (default) or ``"full"``;
    * ``cpus`` — online CPU count (1 = the pre-SMP machine, bit for bit);
    * ``seed`` — machine randomness seed (ASLR etc.);
    * ``obs`` — enable :mod:`repro.obs` metrics/span recording at boot;
    * ``chaos`` — a fault-mix spec string (see docs/CHAOS.md), e.g.
      ``"default=0.01,core.ufork.abort.*=0.2"``, to attach a seeded
      :class:`repro.chaos.ChaosEngine`; ``None`` (default) runs clean.
    * ``perf`` — storage/batching representation
      (docs/ARCHITECTURE.md "Vectorized engine"): ``True`` forces the
      vectorized engine, ``False`` the self-contained per-page one,
      ``None`` (default) follows the ``REPRO_PERF`` environment
      variable.  Simulated results are byte-identical either way; only
      host speed differs.

    ``boot()`` is idempotent and implied by ``spawn``/``run``/``report``
    and by entering the session as a context manager.
    """

    def __init__(self, *, os: str = "ufork", strategy: str = "copa",
                 isolation: str = "fault", cpus: int = 1, seed: int = 7,
                 obs: bool = False, chaos: Optional[str] = None,
                 perf: Optional[bool] = None) -> None:
        # validate eagerly so typos fail at construction, not at boot
        _resolve_os(os)
        _resolve_strategy(strategy)
        _resolve_isolation(isolation)
        if cpus < 1:
            raise ValueError("cpus must be >= 1")
        self.os_name = os
        self.strategy = strategy
        self.isolation = isolation
        self.cpus = cpus
        self.seed = seed
        self.obs_enabled = obs
        self.chaos_spec = chaos
        self.perf = perf
        self.machine: Optional[Any] = None
        self.os: Optional[Any] = None

    # -- lifecycle -------------------------------------------------------

    def boot(self) -> "Session":
        """Create the machine and the OS (idempotent)."""
        if self.os is not None:
            return self
        from repro.machine import Machine as _MachineCls
        self.machine = _MachineCls(seed=self.seed, num_cpus=self.cpus,
                                   perf=self.perf)
        if self.chaos_spec is not None:
            from repro.chaos import ChaosEngine, FaultMix
            ChaosEngine(seed=self.seed,
                        mix=FaultMix.parse(self.chaos_spec)
                        ).attach(self.machine)
        os_cls = _resolve_os(self.os_name)
        kwargs: Dict[str, Any] = {
            "machine": self.machine,
            "isolation": _resolve_isolation(self.isolation),
        }
        if self.os_name == "ufork":
            kwargs["copy_strategy"] = _resolve_strategy(self.strategy)
        self.os = os_cls(**kwargs)
        if self.obs_enabled:
            self.machine.obs.enable()
        return self

    def __enter__(self) -> "Session":
        return self.boot()

    def __exit__(self, *exc: Any) -> None:
        if self.machine is not None and self.obs_enabled:
            self.machine.obs.disable()

    # -- running work ----------------------------------------------------

    def spawn(self, image: Optional[Any] = None, name: str = "app"):
        """Load a program; returns its :class:`~repro.apps.guest.GuestContext`.

        ``image`` defaults to the hello-world :class:`ProgramImage` —
        enough heap for small demos and benchmarks.
        """
        self.boot()
        from repro.apps.guest import GuestContext
        if image is None:
            from repro.apps.hello import hello_world_image
            image = hello_world_image()
        return GuestContext(self.os, self.os.spawn(image, name))

    def run(self, workload: Callable[["Session"], _T]) -> _T:
        """Boot (if needed) and hand the session to ``workload``."""
        self.boot()
        return workload(self)

    # -- cluster hooks (docs/CLUSTER.md) ---------------------------------

    def warm_pool(self, size: int, *, image: Optional[Any] = None,
                  warm: Optional[Callable[[Any], None]] = None,
                  name: str = "zygote"):
        """Spawn one zygote, warm it, and fork ``size`` serving workers.

        The scale-out primitive of :mod:`repro.cluster`: returns a
        :class:`repro.cluster.pool.WarmPool` whose ``fork_worker`` /
        ``retire`` grow and shrink this session's serving capacity one
        fast fork (or one exit/reap) at a time.  ``warm`` is called
        once with the zygote's :class:`GuestContext` before any worker
        is forked.
        """
        self.boot()
        from repro.cluster.pool import WarmPool
        return WarmPool(self, size, image=image, warm=warm, name=name)

    # -- snapshot hooks (docs/SNAPSHOT.md) -------------------------------

    def checkpoint(self, pid: int, *, incremental: bool = False) -> bytes:
        """Serialize the μprocess ``pid`` into a ``repro.snapshot/v1``
        blob (:mod:`repro.snapshot`): registers, page mappings, page
        bytes with capability tags recorded *logically*, allocator
        metadata, fd-table policy and signal dispositions.

        ``incremental=True`` captures only the pages that diverged from
        the zygote since fork (refcount-1 frames) — the payload of a
        live migration (docs/CLUSTER.md); apply it with
        :meth:`restore` on a fork twin via :func:`repro.snapshot.restore_into`.
        """
        self.boot()
        from repro.snapshot import checkpoint as _checkpoint
        return _checkpoint(self.os, self.os.procs.get(pid),
                           incremental=incremental)

    def restore(self, blob: bytes, *, name: Optional[str] = None) -> int:
        """Rebuild a checkpointed μprocess from ``blob`` in this
        session's OS and return the new pid.

        Every capability is re-minted through the fork relocation path
        (:func:`repro.core.relocate.relocate_cap`) against the restored
        process's freshly reserved region, so restoring on a different
        machine — or a different seed — yields a process whose logical
        behaviour is identical to the uninterrupted original.
        """
        self.boot()
        from repro.snapshot import restore as _restore
        return _restore(self.os, blob, name=name).pid

    def obs_export(self) -> Dict[str, Any]:
        """This session's ``repro.obs/v1`` export, ready for
        :func:`repro.obs.merge_exports` — how the cluster runner folds
        per-shard metrics into one report.  Requires ``obs=True``.
        """
        if not self.obs_enabled:
            raise ValueError("obs_export() needs Session(obs=True)")
        self.boot()
        return self.machine.obs.export()

    # -- reporting -------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        """JSON-ready summary of the run so far.

        Always contains the simulated clock and its buckets plus the
        machine's event counters; the ``obs`` key holds the full
        ``repro.obs/v1`` export when observability is on, and ``chaos``
        the ``repro.chaos/v1`` injection log when a chaos spec was set.
        """
        self.boot()
        machine = self.machine
        out: Dict[str, Any] = {
            "schema": "repro.api/v1",
            "os": self.os_name,
            "strategy": self.strategy,
            "isolation": self.isolation,
            "cpus": self.cpus,
            "seed": self.seed,
            "simulated_ns": machine.clock.now_ns,
            "buckets": dict(machine.clock.buckets),
            "counters": machine.counters.snapshot(),
        }
        if self.obs_enabled:
            out["obs"] = machine.obs.export()
        if self.chaos_spec is not None:
            out["chaos"] = machine.chaos.export()
        return out


# -- deprecation shims ----------------------------------------------------

def Machine(*args: Any, **kwargs: Any):
    """Deprecated: construct a :class:`Session` instead.

    Forwards unchanged to :class:`repro.machine.Machine`.
    """
    warnings.warn(
        "repro.api.Machine is deprecated and will be removed in "
        "repro 2.0; use repro.api.Session "
        "(or repro.machine.Machine for low-level work)",
        DeprecationWarning, stacklevel=2)
    from repro.machine import Machine as _MachineCls
    return _MachineCls(*args, **kwargs)


def make_scheduler(machine: Any, same_address_space: bool):
    """Deprecated: :meth:`Session.boot` wires the scheduler for you.

    Forwards unchanged to :func:`repro.kernel.sched.make_scheduler`.
    """
    warnings.warn(
        "repro.api.make_scheduler is deprecated and will be removed in "
        "repro 2.0; Session.boot() selects the scheduler from cpus=",
        DeprecationWarning, stacklevel=2)
    from repro.kernel.sched import make_scheduler as _make
    return _make(machine, same_address_space)

"""The ``obs-report`` harness subcommand: profile fork end to end.

Runs the Figure 8 hello-world fork workload on each of the three
systems (μFork, the CheriBSD-like baseline, the Nephele-like baseline)
with observability enabled, then prints each system's hierarchical
span breakdown — the fork cost decomposed the way the paper's cost
model decomposes it (fixed entry, page copies, relocation, registers,
allocator) — plus the busiest time buckets and fork-related counters.

The report asserts the subsystem's core invariant before printing:
every simulated nanosecond that elapsed while observation was on is
attributed somewhere in the span tree, so the tree's total equals the
observed clock time exactly.

Usage::

    python -m repro.harness obs-report
    python -m repro.harness obs-report --json fork-profile.json

The ``--json`` document wraps one ``repro.obs/v1`` export per system
(schema in docs/OBSERVABILITY.md)::

    {"workload": "fig8_hello_fork",
     "systems": {"ufork": {...}, "cheribsd": {...}, "nephele": {...}}}
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs import format_span_tree, validate_export

# import-light module: the simulator stack is resolved through the
# repro.api facade when a report actually runs (this module and
# ``compat`` used to carry duplicate copies of the heavy import block)

#: report row name → :class:`repro.api.Session` keywords.  seed=0 and
#: the explicit isolation presets match the systems' historical direct
#: constructions bit for bit (monolithic defaulted to full isolation).
SYSTEMS: Tuple[Tuple[str, Dict[str, Any]], ...] = (
    ("ufork", dict(os="ufork", strategy="copa", isolation="fault", seed=0)),
    ("cheribsd", dict(os="monolithic", isolation="full", seed=0)),
    ("nephele", dict(os="vmclone", isolation="fault", seed=0)),
)


def run_observed_hello_fork(samples: int = 10, **session_kwargs) -> Any:
    """Boot one system, enable observability, run the Fig 8 workload.

    ``session_kwargs`` go to :class:`repro.api.Session`.  Returns the
    machine's :class:`~repro.obs.Observability` after ``samples``
    fork/exit/wait cycles (plus one unobserved warm-up, so the profile
    covers steady-state forks only).
    """
    from repro.api import Session

    session = Session(**session_kwargs).boot()
    parent = session.spawn(name="hello")
    warm = parent.fork()
    warm.exit(0)
    parent.wait(warm.pid)

    obs = session.machine.obs.enable()
    for _ in range(samples):
        child = parent.fork()
        child.exit(0)
        parent.wait(child.pid)
    obs.disable()
    return obs


def _check_invariant(name: str, obs: Any) -> None:
    tree_total = obs.span_tree.root.total_ns
    export = obs.export()
    observed = export["observed_ns"]
    if tree_total != observed:
        raise AssertionError(
            f"{name}: span tree total {tree_total} ns != observed "
            f"clock time {observed} ns — time leaked past attribution")
    validate_export(export)


def _top_counters(obs: Any, prefix: str = "", limit: int = 8) -> List[str]:
    items = [(name, value)
             for name, value in obs.registry.counters().items()
             if name.startswith(prefix)]
    items.sort(key=lambda item: -item[1])
    if not items:
        return []
    width = max(len(name) for name, _ in items[:limit])
    return [f"  {name:<{width}}  {value:>14,}"
            for name, value in items[:limit]]


def obs_report(samples: int = 10,
               json_path: Optional[str] = None) -> Dict[str, Dict]:
    """Run the workload on every system, print the report, and return
    (optionally writing) the per-system exports."""
    exports: Dict[str, Dict] = {}
    for index, (name, session_kwargs) in enumerate(SYSTEMS):
        obs = run_observed_hello_fork(samples=samples, **session_kwargs)
        _check_invariant(name, obs)
        export = obs.export()
        exports[name] = export

        if index:
            print()
        observed_us = export["observed_ns"] / 1000.0
        print(f"== {name}: {samples} hello-world forks, "
              f"{observed_us:,.1f} us simulated ==")
        print(format_span_tree(obs.span_tree.root))
        time_lines = _top_counters(obs, prefix="time.")
        if time_lines:
            print("top time buckets (ns):")
            print("\n".join(time_lines))
        count_lines = [line for prefix in ("core.", "baselines.", "hw.")
                       for line in _top_counters(obs, prefix=prefix, limit=4)]
        if count_lines:
            print("event counters:")
            print("\n".join(count_lines))

    if json_path is not None:
        from repro.harness.reportio import write_report
        document = {"workload": "fig8_hello_fork", "systems": exports}
        write_report(document, json_path)
        print(f"\n[wrote {json_path}]")
    return exports

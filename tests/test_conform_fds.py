"""Property-based fd-table conformance.

Hypothesis generates random single-process fd programs — pipe
creation, writes, reads, closes and dup2 aliasing — constrained just
enough to never block (reads never exceed the bytes available unless
EOF is guaranteed), then runs each on the simulated kernel under all
four fork strategies *and* on the real host kernel, diffing the
traces.  The generator deliberately produces EBADF and EPIPE paths:
errno parity is part of the property.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.conform.dsl import Scenario, diff_traces
from repro.conform.host import run_host
from repro.conform.simrun import STRATEGIES, run_sim

MAX_PIPES = 3
MAX_DUPS = 2


class _ModelFd:
    """What a tag points at: a (pipe, direction) or the closed sentinel."""

    def __init__(self, pipe: str, writable: bool) -> None:
        self.pipe = pipe
        self.writable = writable


class _Model:
    """Logical pipe state mirrored from the op stream, used only to
    keep generated programs non-blocking."""

    def __init__(self) -> None:
        self.ops = []
        self.tags = {}      # tag -> _ModelFd | None (closed)
        self.avail = {}     # pipe -> buffered byte count

    def pipe_names(self):
        return sorted(self.avail)

    def writers(self, pipe: str) -> int:
        return sum(1 for fd in self.tags.values()
                   if fd is not None and fd.pipe == pipe and fd.writable)

    def readers(self, pipe: str) -> int:
        return sum(1 for fd in self.tags.values()
                   if fd is not None and fd.pipe == pipe and not fd.writable)

    def mk_pipe(self, index: int) -> None:
        name = f"p{index}"
        if name in self.avail:
            return
        self.ops.append(("pipe", name))
        self.avail[name] = 0
        self.tags[name + ".r"] = _ModelFd(name, writable=False)
        self.tags[name + ".w"] = _ModelFd(name, writable=True)

    def write(self, tag: str, n: int) -> None:
        fd = self.tags.get(tag)
        self.ops.append(("write", tag, "x" * n))
        if fd is not None and fd.writable and self.readers(fd.pipe):
            self.avail[fd.pipe] += n
        # closed tag -> EBADF event; read end -> EBADF; no readers ->
        # EPIPE: all observable, none blocking

    def read(self, tag: str, n: int) -> bool:
        fd = self.tags.get(tag)
        if fd is None or fd.writable:
            self.ops.append(("read", tag, n))   # EBADF event
            return True
        avail = self.avail[fd.pipe]
        if avail == 0 and self.writers(fd.pipe):
            return False                        # would block: skip
        take = min(n, avail) if avail else n    # avail==0 -> clean EOF
        self.ops.append(("read", tag, take))
        self.avail[fd.pipe] = avail - min(take, avail)
        return True

    def close(self, tag: str) -> None:
        self.ops.append(("close", tag))
        self.tags[tag] = None

    def dup2(self, src: str, dst: str) -> None:
        fd = self.tags.get(src)
        if fd is None:
            # dup2 from a closed tag is just an EBADF event; the
            # destination is untouched
            self.ops.append(("dup2", src, dst))
            return
        self.ops.append(("dup2", src, dst))
        self.tags[dst] = _ModelFd(fd.pipe, fd.writable)


_ACTION = st.one_of(
    st.tuples(st.just("pipe"), st.integers(0, MAX_PIPES - 1)),
    st.tuples(st.just("write"), st.integers(0, MAX_PIPES - 1),
              st.booleans(), st.integers(1, 6)),
    st.tuples(st.just("read"), st.integers(0, MAX_PIPES - 1),
              st.booleans(), st.integers(1, 6)),
    st.tuples(st.just("close"), st.integers(0, MAX_PIPES - 1),
              st.booleans()),
    st.tuples(st.just("dup2"), st.integers(0, MAX_PIPES - 1),
              st.booleans(), st.integers(0, MAX_DUPS - 1)),
)


def build_scenario(actions) -> Scenario:
    model = _Model()
    model.mk_pipe(0)
    for action in actions:
        kind = action[0]
        if kind == "pipe":
            model.mk_pipe(action[1])
            continue
        pipes = model.pipe_names()
        pipe = pipes[action[1] % len(pipes)]
        if kind == "write":
            model.write(pipe + (".w" if action[2] else ".r"), action[3])
        elif kind == "read":
            model.read(pipe + (".r" if action[2] else ".w"), action[3])
        elif kind == "close":
            model.close(pipe + (".w" if action[2] else ".r"))
        else:  # dup2
            src = pipe + (".w" if action[2] else ".r")
            model.dup2(src, f"d{action[3]}")
    return Scenario("fd-prop", {"main": tuple(model.ops) + (("exit", 0),)})


@settings(max_examples=12, deadline=None)
@given(st.lists(_ACTION, min_size=1, max_size=14))
def test_fd_programs_match_host(actions):
    scenario = build_scenario(actions)
    reference = run_host(scenario)
    for strategy in STRATEGIES:
        trace, _meta = run_sim(scenario, strategy=strategy, num_cpus=1,
                               seed=1)
        diffs = diff_traces(trace, reference)
        assert not diffs, (
            f"[{strategy}] fd program diverges from host:\n"
            + "\n".join(diffs) + f"\nops: {scenario.bodies['main']}")

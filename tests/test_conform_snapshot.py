"""Conformance coverage of the snapshot op: the sim-only
checkpoint/restore scenarios run under every fork strategy at 1/2/4
CPUs, through the interleaving explorer (clean and with injected
mid-restore aborts), and ride in the farm's work matrix.  There is no
host oracle here — the host has no CRIU — so the ground truth is the
op's documented semantics plus trace stability across strategies,
schedules and seeds."""

from __future__ import annotations

import pytest

from repro.conform.dsl import Scenario, snapshot_
from repro.conform.scenarios import by_name, corpus, snapshot_corpus
from repro.conform.simrun import STRATEGIES, run_sim

SCENARIOS = snapshot_corpus()


def test_snapshot_corpus_is_sim_only():
    host_names = {scenario.name for scenario in corpus()}
    for scenario in SCENARIOS:
        assert scenario.name not in host_names
        assert by_name(scenario.name).name == scenario.name
    assert len(SCENARIOS) >= 5


def test_dsl_accepts_and_validates_snapshot():
    assert snapshot_("c") == ("snapshot", "c")
    with pytest.raises(ValueError, match="snapshot of unknown"):
        Scenario("bad", {"main": (snapshot_("nope"),)})
    scenario = SCENARIOS[0]
    # snapshot clones every resource the caller holds: never
    # independent of anything (the DPOR fork/exit caveat applies)
    assert not scenario.ops_independent(("snapshot", "c"),
                                        ("heap_set", "x", 1))
    assert scenario.op_footprint(("snapshot", "c")) == \
        frozenset({"proctree"})


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
def test_trace_is_strategy_and_cpu_invariant(scenario, strategy):
    """One logical trace per scenario, whatever kernel runs it."""
    reference, _ = run_sim(scenario, strategy="copa", num_cpus=1, seed=1)
    for cpus in (1, 2, 4):
        trace, _meta = run_sim(scenario, strategy=strategy,
                               num_cpus=cpus, seed=1)
        assert trace == reference, f"{scenario.name} [{strategy} c{cpus}]"


def test_clone_semantics_differ_from_fork_where_documented():
    """The pipe-duplication scenario is the semantic wedge between
    snapshot and fork: both sides read the buffered bytes."""
    trace, _ = run_sim(by_name("snapshot-pipe-buffer-duplicated"),
                       strategy="copa", num_cpus=1, seed=0)
    assert ["read", "p.r", "ab"] in trace["procs"]["main/c1"]
    assert ["read", "p.r", "ab"] in trace["procs"]["main"]


def test_shm_gate_degrades_to_err_and_rolls_back():
    trace, meta = run_sim(by_name("snapshot-shm-gated"),
                          strategy="copa", num_cpus=1, seed=0)
    assert ["err", "snapshot", "EINVAL"] in trace["procs"]["main"]
    assert trace["status"]["main"] == ["exit", 0]
    machine = meta["machine"]
    assert machine.counters.snapshot().get("restore") is None


def test_explorer_finds_no_violations_clean_or_chaotic():
    from repro.conform.explorer import explore
    from repro.conform.farm import DEFAULT_CHAOS_MIX

    scenario = by_name("snapshot-nested")
    clean = explore(scenario, strategy="copa", num_cpus=2, seed=0,
                    depth_bound=3, budget=12)
    assert clean["violations"] == []
    assert clean["schedules"] >= 2
    chaotic = explore(scenario, strategy="copa", num_cpus=2, seed=0,
                      depth_bound=3, budget=12,
                      chaos_mix=DEFAULT_CHAOS_MIX)
    assert chaotic["violations"] == []


def test_farm_matrix_includes_snapshot_units_and_abort_mix():
    from repro.conform.farm import DEFAULT_CHAOS_MIX, plan_units

    assert "core.snapshot.abort.*=0.05" in DEFAULT_CHAOS_MIX
    units = plan_units(strategies=["copa"], cpus=[1])
    names = {unit["scenario"] for unit in units}
    for scenario in SCENARIOS:
        assert scenario.name in names

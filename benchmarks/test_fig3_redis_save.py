"""Figure 3: Redis DB overall save times (ms), μFork vs CheriBSD.

Paper: μFork is 1.9× faster at 100 KB (1.8 vs 3.4 ms) and 1.4× faster
at 100 MB (109 vs 158 ms) — μFork wins across the whole sweep, with
the gap narrowing as serialization dominates.
"""

from conftest import run_once

from repro.harness.experiments import DEFAULT_DB_SIZES, fig3_redis_save


def test_fig3_redis_save(benchmark, record_figure):
    rows = run_once(benchmark, fig3_redis_save, sizes=DEFAULT_DB_SIZES)
    record_figure(
        "fig3_redis_save", rows,
        "Figure 3: Redis DB overall save times (ms)",
    )
    for row in rows:
        # μFork wins at every database size
        assert row["ufork_ms"] < row["cheribsd_ms"]
        # and by a sane factor (paper: 1.4-1.9x)
        assert 1.0 < row["speedup"] < 4.0
    # the absolute save time grows with database size
    times = [row["ufork_ms"] for row in rows]
    assert times == sorted(times)

"""Execute a conformance scenario on the simulated kernel.

The interpreter drives one :class:`~repro.conform.dsl.Scenario` over a
freshly booted OS — :class:`~repro.core.UForkOS` under any copy
strategy, or the :class:`~repro.baselines.MonolithicOS` baseline — at
any CPU count, producing the same logical trace shape as the host
oracle (:mod:`repro.conform.hostrun`).

Scheduling model: ops are atomic; between ops the interpreter picks
which runnable process steps next.  The default policy is
*newest-first* (a forked subtree runs to completion before its parent
resumes), which mirrors the host runner's sync-pipe serialization, so
default-schedule traces are directly host-comparable.  A ``decision``
callback can override every pick — that is the interleaving explorer's
hook — and each multi-candidate pick is counted as one decision point.
An op that would block (pipe full/empty, unexited child) keeps its
progress, parks the process, and is retried after any other process
makes progress; if every live process is parked the run reports a
deadlock.

Kernel fidelity: every op runs on the simulated kernel's own syscalls
through a :class:`~repro.apps.guest.GuestContext` (so capability
checks, copy-strategy faults, TLB shootdowns and signal delivery are
all exercised), the interpreter drives the real scheduler via
``switch_to`` with per-process home CPUs, installs a
``machine.syscall_tap`` to count the syscall boundary crossings, and
uses the scheduler's pluggable ``decision_source`` so kernel-internal
yields dispatch the process the interpreter intends to run.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.baselines import MonolithicOS
from repro.conform.dsl import READ_END, WRITE_END, Scenario, status_pair
from repro.core import CopyStrategy, UForkOS
from repro.errors import (
    KernelError,
    NoChildProcess,
    NoSuchProcess,
    WouldBlock,
)
from repro.kernel import signals as _signals
from repro.kernel.task import TaskState
from repro.machine import Machine

#: every strategy the conformance matrix covers ("monolithic" is the
#: CheriBSD-like baseline; the rest select a UForkOS copy strategy)
STRATEGIES = ("monolithic", "full", "coa", "copa")

SIG_NUMS = {
    "TERM": _signals.SIGTERM,
    "USR1": _signals.SIGUSR1,
    "USR2": _signals.SIGUSR2,
    "CHLD": _signals.SIGCHLD,
    "KILL": _signals.SIGKILL,
}

#: one shared-memory page serves every scenario's shm vars
SHM_NAME = "conform-shm"
SHM_SIZE = 4096


class ConformError(Exception):
    """A scenario could not be executed (distinct from a conformance
    *difference*, which is reported as a trace diff)."""


class DeadlockError(ConformError):
    """Every live process is blocked — the schedule wedged the
    scenario."""


def boot_sim(strategy: str, num_cpus: int = 1, seed: int = 0,
             machine: Optional[Machine] = None):
    """Boot a fresh (machine, os) pair for one conformance run."""
    machine = machine or Machine(seed=seed, num_cpus=num_cpus)
    if strategy == "monolithic":
        return machine, MonolithicOS(machine=machine)
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; "
                         f"choose from {STRATEGIES}")
    return machine, UForkOS(machine=machine,
                            copy_strategy=CopyStrategy(strategy))


class _Proc:
    """Interpreter-side state of one scenario process."""

    __slots__ = ("label", "ctx", "ops", "pc", "index", "blocked", "done",
                 "fdmap", "heap", "shm_cap", "children", "fork_counts",
                 "sigcounts", "parent_pid", "io")

    def __init__(self, label: str, ctx: GuestContext,
                 ops: Tuple[Any, ...], index: int,
                 parent_pid: Optional[int]) -> None:
        self.label = label
        self.ctx = ctx
        self.ops = ops
        self.pc = 0
        self.index = index
        self.blocked = False
        self.done = False
        self.fdmap: Dict[str, int] = {}
        self.heap: Dict[str, Any] = {}
        self.shm_cap: Optional[Any] = None
        self.children: Dict[str, int] = {}
        self.fork_counts: Dict[str, int] = {}
        self.sigcounts: Dict[str, int] = {}
        self.parent_pid = parent_pid
        self.io: Optional[Dict[str, Any]] = None


class SimRun:
    """One scenario execution over one booted kernel."""

    def __init__(self, os_: Any, scenario: Scenario,
                 decision: Optional[Callable[[int, List[Tuple[str, Any]]],
                                             int]] = None,
                 on_step: Optional[Callable[[Any, "SimRun"], None]] = None
                 ) -> None:
        self.os_ = os_
        self.machine = os_.machine
        self.scenario = scenario
        self.decision = decision
        self.on_step = on_step
        self.procs: List[_Proc] = []
        self.by_pid: Dict[int, _Proc] = {}
        self.events: Dict[str, List[List[Any]]] = {}
        self.status: Dict[str, List[Any]] = {}
        self.syscalls: Dict[str, int] = {}
        #: per decision point: the candidates offered, newest first,
        #: as (label, next_op) pairs (explorer pruning material)
        self.points: List[List[Tuple[str, Any]]] = []
        self._want_task: Optional[Any] = None

    # -- setup ----------------------------------------------------------

    def _install_hooks(self) -> None:
        def tap(os, proc, name, args, result, error):
            self.syscalls[name] = self.syscalls.get(name, 0) + 1

        self.machine.syscall_tap = tap
        self.os_.sched.decision_source = self._kernel_pick

    def _kernel_pick(self, candidates: List[Any]) -> Optional[Any]:
        if self._want_task is not None and self._want_task in candidates:
            return self._want_task
        return None

    def _spawn_root(self) -> None:
        root = self.os_.spawn(hello_world_image(),
                              f"conform-{self.scenario.name}")
        ctx = GuestContext(self.os_, root)
        main = _Proc("main", ctx, self.scenario.bodies["main"], 0, None)
        self.procs.append(main)
        self.by_pid[root.pid] = main
        self.events[main.label] = []
        if self.scenario.shm_vars:
            self._run_on(main)
            shm = ctx.syscall("shm_open", SHM_NAME, SHM_SIZE)
            main.shm_cap = ctx.syscall("shm_map", shm)

    # -- the loop -------------------------------------------------------

    def run(self) -> Dict[str, Any]:
        self._install_hooks()
        try:
            self._spawn_root()
            point = 0
            while True:
                candidates = [p for p in self.procs
                              if not p.done and not p.blocked]
                if not candidates:
                    if any(not p.done for p in self.procs):
                        raise DeadlockError(
                            f"{self.scenario.name}: all live processes "
                            f"blocked")
                    break
                # newest-first: forked subtrees run to completion
                candidates.sort(key=lambda p: -p.index)
                choice = 0
                if len(candidates) > 1:
                    offered = [(p.label, self._peek(p)) for p in candidates]
                    self.points.append(offered)
                    if self.decision is not None:
                        choice = self.decision(point, offered)
                        choice = max(0, min(choice, len(candidates) - 1))
                    point += 1
                proc = candidates[choice]
                if self._step(proc):
                    for other in self.procs:
                        other.blocked = False
                if self.on_step is not None:
                    self.on_step(self.os_, self)
            self._reap_orphans()
        finally:
            self.machine.syscall_tap = None
            self.os_.sched.decision_source = None
            self._want_task = None
        return {"procs": self.events, "status": self.status}

    def _peek(self, p: _Proc) -> Any:
        if p.pc < len(p.ops):
            return list(p.ops[p.pc])
        return ["exit", 0]

    def _reap_orphans(self) -> None:
        """Play init: reap exited processes whose parent died without
        waiting (a real kernel reparents them to pid 1)."""
        for proc in list(self.os_.procs.all()):
            if proc.alive or proc.reaped:
                continue
            parent = proc.parent
            if parent is None or not parent.alive:
                proc.reaped = True
                self.os_.procs.remove(proc.pid)

    # -- one step -------------------------------------------------------

    def _step(self, p: _Proc) -> bool:
        """Execute (or resume) one op for ``p``; True if it progressed."""
        if not self._deliver_boundary(p):
            return True  # the pending signal killed it: that's progress
        if not p.ctx.proc.alive:
            # killed outside its own step (SIGKILL acts on send)
            self._finalize_dead(p)
            return True
        self._run_on(p)
        if p.pc >= len(p.ops):
            return self._op_exit(p, 0)
        op = p.ops[p.pc]
        handler = getattr(self, f"_op_{op[0]}")
        progressed = handler(p, *op[1:])
        if progressed and not p.done:
            p.pc += 1
            p.io = None
        return progressed

    def _run_on(self, p: _Proc) -> None:
        """Dispatch ``p``'s task on its home CPU via the real scheduler."""
        task = p.ctx.proc.main_task()
        if task.state is TaskState.EXITED:
            return
        machine = self.machine
        cpu = p.index % machine.num_cpus
        machine.current_cpu = cpu
        self._want_task = task
        if self.os_.sched.current is not task:
            if task.state is TaskState.BLOCKED:
                task.state = TaskState.RUNNABLE
            self.os_.sched.switch_to(task)

    def _deliver_boundary(self, p: _Proc) -> bool:
        """Cross a kernel boundary if signals are pending (the host
        delivers asynchronously; promptly-at-next-op is the closest
        schedule-stable model).  False if delivery killed ``p``."""
        if p.done:
            return False
        if not _signals.signal_state(p.ctx.proc).pending:
            return True
        self._run_on(p)
        try:
            p.ctx.syscall("getpid")
            return True
        except NoSuchProcess:
            self._finalize_dead(p)
            return False

    def _finalize_dead(self, p: _Proc) -> None:
        p.done = True
        p.io = None
        if p.label == "main":
            self.status["main"] = status_pair(p.ctx.proc.exit_status)

    def _emit(self, p: _Proc, *event: Any) -> None:
        self.events[p.label].append(list(event))

    # -- op handlers (each returns True when the op completed) ----------

    def _fd_of(self, p: _Proc, op: str, tag: str) -> Optional[int]:
        if tag not in p.fdmap:
            raise ConformError(f"{self.scenario.name}/{p.label}: op "
                               f"{op!r} on unknown fd tag {tag!r}")
        fd = p.fdmap[tag]
        if fd < 0:
            self._emit(p, "err", op, "EBADF")
            return None
        return fd

    def _op_pipe(self, p: _Proc, name: str) -> bool:
        read_fd, write_fd = p.ctx.syscall("pipe")
        p.fdmap[name + READ_END] = read_fd
        p.fdmap[name + WRITE_END] = write_fd
        return True

    def _op_write(self, p: _Proc, tag: str, text: str) -> bool:
        fd = self._fd_of(p, "write", tag)
        if fd is None:
            return True
        data = text.encode("latin-1")
        if p.io is None:
            p.io = {"sent": 0}
        staging = p.ctx._stage()
        try:
            while p.io["sent"] < len(data):
                chunk = data[p.io["sent"]:p.io["sent"] + staging.length]
                p.ctx.store(staging, chunk)
                n = p.ctx.syscall("write", fd, staging, len(chunk))
                p.io["sent"] += n
        except WouldBlock:
            p.blocked = True
            return False
        except KernelError as exc:
            self._emit(p, "err", "write", exc.errno_name)
            return True
        self._emit(p, "write", tag, len(data))
        return True

    def _op_read(self, p: _Proc, tag: str, n: int) -> bool:
        fd = self._fd_of(p, "read", tag)
        if fd is None:
            return True
        if p.io is None:
            p.io = {"buf": bytearray()}
        buf = p.io["buf"]
        staging = p.ctx._stage()
        try:
            while len(buf) < n:
                chunk = min(staging.length, n - len(buf))
                got = p.ctx.syscall("read", fd, staging, chunk)
                if got == 0:
                    break  # EOF
                buf += p.ctx.load(staging, got)
        except WouldBlock:
            p.blocked = True
            return False
        except KernelError as exc:
            self._emit(p, "err", "read", exc.errno_name)
            return True
        self._emit(p, "read", tag, bytes(buf).decode("latin-1"))
        return True

    def _op_close(self, p: _Proc, tag: str) -> bool:
        fd = self._fd_of(p, "close", tag)
        if fd is None:
            return True
        try:
            p.ctx.syscall("close", fd)
        except KernelError as exc:
            self._emit(p, "err", "close", exc.errno_name)
            return True
        p.fdmap[tag] = -1
        return True

    def _op_dup2(self, p: _Proc, src: str, dst: str) -> bool:
        src_fd = self._fd_of(p, "dup2", src)
        if src_fd is None:
            return True
        try:
            dst_fd = p.fdmap.get(dst, -1)
            if dst_fd >= 0:
                p.fdmap[dst] = p.ctx.syscall("dup2", src_fd, dst_fd)
            else:
                # fresh logical slot: semantically dup2 into a free fd
                p.fdmap[dst] = p.ctx.syscall("dup", src_fd)
        except KernelError as exc:
            self._emit(p, "err", "dup2", exc.errno_name)
        return True

    def _op_fork(self, p: _Proc, body: str) -> bool:
        count = p.fork_counts.get(body, 0) + 1
        p.fork_counts[body] = count
        ref = f"{body}{count}"
        try:
            child_ctx = p.ctx.fork()
        except KernelError as exc:
            self._emit(p, "err", "fork", exc.errno_name)
            return True
        delta = child_ctx.proc.region_base - p.ctx.proc.region_base
        child = _Proc(f"{p.label}/{ref}", child_ctx,
                      self.scenario.bodies[body], len(self.procs),
                      p.ctx.proc.pid)
        child.fdmap = dict(p.fdmap)
        child.heap = {var: cap.rebased(delta)
                      for var, cap in p.heap.items()}
        if p.shm_cap is not None:
            child.shm_cap = p.shm_cap.rebased(delta)
        child.children = {}
        child.sigcounts = dict(p.sigcounts)
        self.procs.append(child)
        self.by_pid[child_ctx.proc.pid] = child
        self.events[child.label] = []
        p.children[ref] = child_ctx.proc.pid
        return True

    def _op_snapshot(self, p: _Proc, body: str) -> bool:
        """Clone the caller through the snapshot subsystem: checkpoint
        it at this syscall boundary and restore the blob into the same
        kernel as a waitable child running ``body``.  Like fork, except
        the clone's pipes are *duplicated* (buffered bytes and all)
        rather than shared, and non-pipe fds are dropped by v1 policy.
        A gated checkpoint (threads, shm) or an injected restore abort
        degrades to an err event — the kernel rolls back to exactly the
        pre-op state."""
        from repro.snapshot import checkpoint, restore

        count = p.fork_counts.get(body, 0) + 1
        p.fork_counts[body] = count
        ref = f"{body}{count}"
        try:
            blob = checkpoint(self.os_, p.ctx.proc)
            clone_proc = restore(self.os_, blob,
                                 name=f"{p.ctx.proc.name}-snap",
                                 parent=p.ctx.proc)
        except KernelError as exc:
            self._emit(p, "err", "snapshot", exc.errno_name)
            return True
        clone_ctx = GuestContext(self.os_, clone_proc)
        delta = clone_proc.region_base - p.ctx.proc.region_base
        clone = _Proc(f"{p.label}/{ref}", clone_ctx,
                      self.scenario.bodies[body], len(self.procs),
                      p.ctx.proc.pid)
        clone.fdmap = dict(p.fdmap)  # fd numbers survive restore
        clone.heap = {var: cap.rebased(delta)
                      for var, cap in p.heap.items()}
        clone.sigcounts = dict(p.sigcounts)
        self.procs.append(clone)
        self.by_pid[clone_proc.pid] = clone
        self.events[clone.label] = []
        p.children[ref] = clone_proc.pid
        return True

    def _op_exit(self, p: _Proc, raw_status: int) -> bool:
        try:
            p.ctx.syscall("exit", raw_status)
        except NoSuchProcess:
            pass
        if p.label == "main":
            self.status["main"] = ["exit", raw_status]
        p.done = True
        return True

    def _op_wait(self, p: _Proc, ref: Optional[str]) -> bool:
        if ref is None:
            pid = -1
        else:
            pid = p.children.get(ref)
            if pid is None:
                raise ConformError(f"{self.scenario.name}/{p.label}: "
                                   f"wait on unknown child {ref!r}")
        try:
            _cpid, raw = p.ctx.syscall("waitpid", pid)
        except WouldBlock:
            p.blocked = True
            return False
        except NoChildProcess:
            self._emit(p, "err", "wait", "ECHILD")
            return True
        pair = status_pair(raw)
        self._emit(p, "wait", ref or "any", pair[0], pair[1])
        return True

    def _op_heap_set(self, p: _Proc, var: str, value: int) -> bool:
        cap = p.heap.get(var)
        if cap is None:
            cap = p.ctx.malloc(16)
            p.heap[var] = cap
        p.ctx.store_u64(cap, value)
        return True

    def _op_heap_get(self, p: _Proc, var: str) -> bool:
        cap = p.heap.get(var)
        if cap is None:
            raise ConformError(f"{self.scenario.name}/{p.label}: "
                               f"heap_get of unset var {var!r}")
        self._emit(p, "heap", var, p.ctx.load_u64(cap))
        return True

    def _shm_offset(self, var: str) -> int:
        return self.scenario.shm_vars.index(var) * 8

    def _op_shm_set(self, p: _Proc, var: str, value: int) -> bool:
        p.ctx.store_u64(p.shm_cap, value, self._shm_offset(var))
        return True

    def _op_shm_get(self, p: _Proc, var: str) -> bool:
        value = p.ctx.load_u64(p.shm_cap, self._shm_offset(var))
        self._emit(p, "shm", var, value)
        return True

    def _op_signal(self, p: _Proc, sig: str, action: str) -> bool:
        num = SIG_NUMS[sig]
        if action == "ignore":
            handler: Any = _signals.SIG_IGN
        elif action == "default":
            handler = _signals.SIG_DFL
        else:  # count
            def handler(proc, signum, _name=sig):
                state = self.by_pid.get(proc.pid)
                if state is not None:
                    state.sigcounts[_name] = \
                        state.sigcounts.get(_name, 0) + 1
        p.ctx.syscall("signal", num, handler)
        return True

    def _op_kill(self, p: _Proc, target: str, sig: str) -> bool:
        if target == "self":
            pid = p.ctx.proc.pid
        elif target == "parent":
            if p.parent_pid is None:
                raise ConformError(f"{self.scenario.name}: main has "
                                   f"no parent to kill")
            pid = p.parent_pid
        else:
            pid = p.children.get(target)
            if pid is None:
                raise ConformError(f"{self.scenario.name}/{p.label}: "
                                   f"kill of unknown child {target!r}")
        try:
            p.ctx.syscall("kill", pid, SIG_NUMS[sig])
        except NoSuchProcess:
            self._emit(p, "err", "kill", "ESRCH")
            return True
        except KernelError as exc:
            self._emit(p, "err", "kill", exc.errno_name)
            return True
        if not p.ctx.proc.alive:
            # SIGKILL terminates on send, before any boundary
            self._finalize_dead(p)
            return True
        # a self-directed signal acts before anything else we would do
        # (on the host it is delivered synchronously)
        return self._deliver_boundary(p) or True

    def _op_sig_count(self, p: _Proc, sig: str) -> bool:
        if not self._deliver_boundary(p):
            return True
        self._emit(p, "sig_count", sig, p.sigcounts.get(sig, 0))
        return True

    def _op_probe(self, p: _Proc, what: str) -> bool:
        """Attempt a capability attack from inside the scenario process
        and record the fault class that stopped it.  The event is a
        pure function of the capability machinery — no schedule, CPU
        count or strategy dependence — so probes can sit anywhere in a
        schedule-invariant scenario and the explorer's cross-schedule
        trace equality doubles as an isolation proof."""
        buf = p.ctx.malloc(32)
        try:
            if what == "oob":
                p.ctx.load(buf.add(buf.length), 8)
            else:  # "tag": rebuild a cap from raw bytes, then deref it
                p.ctx.store_cap(buf, buf.add(8), offset=0)
                p.ctx.store(buf, p.ctx.load(buf, 16, offset=0), offset=16)
                p.ctx.load(p.ctx.load_cap(buf, offset=16), 8)
        except Exception as exc:  # noqa: BLE001 - the class is the event
            self._emit(p, "probe", what, type(exc).__name__)
        else:
            self._emit(p, "probe", what, "unstopped")
        finally:
            p.ctx.free(buf)
        return True


def run_sim(scenario: Scenario, strategy: str, num_cpus: int = 1,
            seed: int = 0,
            decision: Optional[Callable[[int, List[Tuple[str, Any]]],
                                        int]] = None,
            on_step: Optional[Callable[[Any, SimRun], None]] = None,
            machine: Optional[Machine] = None
            ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Boot, run, and summarize one (scenario, strategy, cpus) cell.

    Returns ``(trace, meta)``: the logical trace (host-comparable) and
    run metadata — syscall counts from the boundary tap, the number of
    decision points, and the per-point candidate sets the explorer
    needs for its frontier.
    """
    machine, os_ = boot_sim(strategy, num_cpus=num_cpus, seed=seed,
                            machine=machine)
    interp = SimRun(os_, scenario, decision=decision, on_step=on_step)
    trace = interp.run()
    meta = {
        "syscalls": dict(sorted(interp.syscalls.items())),
        "decision_points": len(interp.points),
        "points": interp.points,
        "os": os_,
        "machine": machine,
    }
    return trace, meta

"""Figure 9: Unixbench Spawn (1000 fork+exit) and Context1 (pipe
ping-pong to 100k) execution times.

Paper: Spawn 56 ms (μFork) vs 198 ms (CheriBSD); Context1 245 ms vs
419 ms — the single address space wins on both fork cost and IPC.
"""

from conftest import run_once

from repro.harness.experiments import fig9_unixbench


def test_fig9_unixbench(benchmark, record_figure):
    rows = run_once(benchmark, fig9_unixbench, measured_fraction=0.05)
    record_figure(
        "fig9_unixbench", rows,
        "Figure 9: Unixbench Spawn and Context1 execution time (ms)",
    )
    by_system = {row["system"]: row for row in rows}
    ufork = by_system["ufork"]
    cheribsd = by_system["cheribsd"]

    # Spawn: μFork several times faster (paper: 3.5x)
    assert ufork["spawn_ms"] < cheribsd["spawn_ms"]
    assert 2.0 < cheribsd["spawn_ms"] / ufork["spawn_ms"] < 6.0
    assert 28 < ufork["spawn_ms"] < 112         # paper: 56
    assert 100 < cheribsd["spawn_ms"] < 400     # paper: 198

    # Context1: trapless syscalls + no TLB flushes win (paper: 1.7x)
    assert ufork["context1_ms"] < cheribsd["context1_ms"]
    assert 1.2 < cheribsd["context1_ms"] / ufork["context1_ms"] < 2.6
    assert 120 < ufork["context1_ms"] < 500     # paper: 245
    assert 210 < cheribsd["context1_ms"] < 840  # paper: 419

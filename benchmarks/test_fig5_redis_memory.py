"""Figure 5: memory consumed by the forked Redis process (MB).

Paper @100 MB database: CoPA 6 MB, CoA 101 MB, full copy 144 MB,
CheriBSD 56 MB.  The ordering CoPA << CheriBSD < CoA < full and the
proportionality to database size are the reproduced shape.
"""

from conftest import run_once

from repro.harness.experiments import DEFAULT_DB_SIZES, fig5_redis_memory
from repro.mem.layout import MiB


def test_fig5_redis_memory(benchmark, record_figure):
    rows = run_once(benchmark, fig5_redis_memory, sizes=DEFAULT_DB_SIZES)
    record_figure(
        "fig5_redis_memory", rows,
        "Figure 5: Redis forked-process memory consumption (MB)",
    )
    for row in rows:
        db_mb = row["db_size"] / MiB
        # CoPA shares everything the child does not rewrite: tiny
        assert row["ufork_copa_mb"] < row["ufork_coa_mb"]
        # CoA copies everything the child reads: ~ the database
        assert row["ufork_coa_mb"] >= 0.8 * db_mb
        # full copy duplicates the whole static heap: > the database
        assert row["ufork_full_mb"] > row["ufork_coa_mb"]

    # at the largest size, CoPA's consumption is a small fraction of the
    # database while CheriBSD's allocator keeps it around half (paper:
    # 6 vs 56 MB at a 100 MB database)
    last = rows[-1]
    db_mb = last["db_size"] / MiB
    assert last["ufork_copa_mb"] < 0.25 * db_mb
    assert 0.3 * db_mb < last["cheribsd_mb"] < 0.9 * db_mb

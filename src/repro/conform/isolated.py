"""Run fork-heavy work in isolated process groups.

The pattern (borrowed from pytest-isolated's subprocess execution
model) is what keeps host-oracle tests and exploration-farm workers
from ever wedging their parent: the payload runs in its own session —
so its whole fork tree shares one process group — under a hard
wall-clock deadline; on overrun the *group* gets SIGKILL, which
reaches orphans even after they have been reparented to init, and the
child is always reaped.  Crashes are reported with the signal name,
not just a return code.

Two entry points:

* :func:`run_isolated` — the original one-shot helper: run a code
  snippet, block until it exits (or the deadline kills it), return an
  :class:`IsolatedResult`.  ``tests/isolated.py`` re-exports it.
* :class:`IsolatedProcess` — the non-blocking form the exploration
  farm (:mod:`repro.conform.farm`) builds on: spawn many workers
  concurrently (each with its own group and deadline measured from
  *spawn*, so N workers waited on sequentially still share one wall
  clock), then :meth:`~IsolatedProcess.wait` each in turn.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from typing import List, Optional

import repro

#: the public surface; ``tests/isolated.py`` re-exports exactly this
#: (tests/test_sec_attacks.py pins the two lists against each other so
#: the shim cannot silently drift from the promoted module again)
__all__ = ["REPO_SRC", "IsolatedProcess", "IsolatedResult", "run_isolated"]

#: directory that makes ``import repro`` work in a child interpreter —
#: wherever this very package was imported from
REPO_SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


@dataclass
class IsolatedResult:
    returncode: int
    stdout: str
    stderr: str
    timed_out: bool

    @property
    def crashed(self) -> bool:
        return self.returncode < 0

    @property
    def crash_reason(self) -> str:
        """Human-readable outcome, pytest-isolated style."""
        if self.timed_out:
            return "timed out (process group killed)"
        if self.returncode < 0:
            try:
                name = signal.Signals(-self.returncode).name
            except ValueError:
                name = f"signal {-self.returncode}"
            return f"crashed with {name}"
        return f"exited with code {self.returncode}"


class IsolatedProcess:
    """One subprocess in its own session / process group.

    Exactly one of ``code`` (a ``python -c`` snippet) or ``argv`` (a
    full command line, e.g. ``[sys.executable, "-m", ...]``) selects
    the payload.  The deadline starts at *spawn*: a coordinator that
    launches N workers and then waits on them one by one gives every
    worker the same wall-clock budget, not ``timeout`` each.
    """

    def __init__(self, code: Optional[str] = None,
                 argv: Optional[List[str]] = None,
                 timeout: float = 20.0,
                 pythonpath: str = REPO_SRC) -> None:
        if (code is None) == (argv is None):
            raise ValueError("exactly one of code= or argv= is required")
        if code is not None:
            argv = [sys.executable, "-c", code]
        self.timeout = timeout
        env = dict(os.environ)
        env["PYTHONPATH"] = pythonpath
        self.proc = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            start_new_session=True,
            text=True,
            env=env,
        )
        self._deadline = time.monotonic() + timeout

    @property
    def pid(self) -> int:
        return self.proc.pid

    def remaining(self) -> float:
        """Wall-clock seconds left before the group gets SIGKILL."""
        return max(0.0, self._deadline - time.monotonic())

    def kill_group(self) -> None:
        """SIGKILL the whole session — reaches orphaned grandchildren
        that were reparented to init after their parent exited."""
        try:
            os.killpg(self.proc.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass

    def wait(self) -> IsolatedResult:
        """Block until exit or deadline; on overrun, group-kill and
        reap.  Always returns (never raises TimeoutExpired)."""
        try:
            out, err = self.proc.communicate(timeout=self.remaining())
            return IsolatedResult(self.proc.returncode, out, err,
                                  timed_out=False)
        except subprocess.TimeoutExpired:
            self.kill_group()
            out, err = self.proc.communicate()
            return IsolatedResult(self.proc.returncode, out, err,
                                  timed_out=True)


def run_isolated(code: str, timeout: float = 20.0,
                 pythonpath: str = REPO_SRC) -> IsolatedResult:
    """Execute ``code`` with the interpreter in a new session; kill the
    whole process group on timeout and reap before returning."""
    return IsolatedProcess(code=code, timeout=timeout,
                           pythonpath=pythonpath).wait()

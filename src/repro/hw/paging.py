"""Page tables, address spaces, and fault dispatch.

An :class:`AddressSpace` is a page table bound to the machine's physical
memory.  The SASOS owns exactly one (kernel and every μprocess live in
it); the monolithic baseline creates one per process.

Faults are the extension point that makes the μFork copy strategies
work: when an access violates page permissions (or hits an unmapped
page) the address space charges the fault cost and calls the registered
fault handler.  CoW, CoA and CoPA are all implemented as fault handlers
(:mod:`repro.core.strategies`); the dedicated *capability-load* access
kind models CHERI's fault-on-capability-load page permission that CoPA
requires (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, IntFlag, auto
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro import perf as _perf
from repro.cheri.capability import Capability
from repro.cheri.codec import CAP_SIZE
from repro.errors import (
    ProtectionError,
    UnmappedAddressError,
)
from repro.hw.phys import _ZEROS, Frame


class PagePerm(IntFlag):
    """Page-table permission bits."""

    NONE = 0
    READ = 1 << 0
    WRITE = 1 << 1
    EXEC = 1 << 2
    #: CHERI page permission: when absent, *loading a capability* from
    #: the page faults even though plain data loads succeed.  This is
    #: the hardware hook CoPA is built on.
    LOAD_CAP = 1 << 3

    @classmethod
    def rwc(cls) -> "PagePerm":
        if _perf.ENABLED:
            return _PAGE_RWC
        return cls.READ | cls.WRITE | cls.LOAD_CAP

    @classmethod
    def read_only(cls) -> "PagePerm":
        if _perf.ENABLED:
            return _PAGE_RO
        return cls.READ | cls.LOAD_CAP

    @classmethod
    def rx(cls) -> "PagePerm":
        if _perf.ENABLED:
            return _PAGE_RX
        return cls.READ | cls.EXEC | cls.LOAD_CAP


#: precomputed composite page-permission constants (pure values; the
#: :mod:`repro.perf` path skips IntFlag ``|`` member resolution)
_PAGE_RWC = PagePerm.READ | PagePerm.WRITE | PagePerm.LOAD_CAP
_PAGE_RO = PagePerm.READ | PagePerm.LOAD_CAP
_PAGE_RX = PagePerm.READ | PagePerm.EXEC | PagePerm.LOAD_CAP


class AccessKind(Enum):
    READ = auto()
    WRITE = auto()
    EXEC = auto()
    #: a capability (tagged, 16-byte) load — distinct so the CoPA
    #: fault-on-capability-load bit can be modeled
    CAP_LOAD = auto()

    @property
    def is_write(self) -> bool:
        return self is AccessKind.WRITE


_REQUIRED_PERM = {
    AccessKind.READ: PagePerm.READ,
    AccessKind.WRITE: PagePerm.WRITE,
    AccessKind.EXEC: PagePerm.EXEC,
    AccessKind.CAP_LOAD: PagePerm.READ | PagePerm.LOAD_CAP,
}

#: plain-int view of the required-permission masks — the cached walk
#: compares raw bits to skip IntFlag instantiation on every access
_REQUIRED_BITS = {kind: int(mask) for kind, mask in _REQUIRED_PERM.items()}

_ACCESS_NAME = {
    AccessKind.READ: "read",
    AccessKind.WRITE: "write",
    AccessKind.EXEC: "exec",
    AccessKind.CAP_LOAD: "cap_load",
}

# Per-member attributes precomputed for the repro.perf fast paths: an
# attribute load skips both the Enum.__hash__ dict probe and the
# per-fault f-string formatting; the values are identical to what the
# slow path computes.
for _kind in AccessKind:
    _kind._req_bits = _REQUIRED_BITS[_kind]
    _kind._nm = _ACCESS_NAME[_kind]
    _kind._fault_counter = f"fault_{_ACCESS_NAME[_kind]}"
    _kind._fault_obs = f"hw.paging.fault.{_ACCESS_NAME[_kind]}"
del _kind

#: raw permission-bit masks for the two byte-access kinds, hoisted for
#: the inline walk-cache probes in :meth:`AddressSpace.read`/``write``
_READ_BITS = AccessKind.READ._req_bits
_WRITE_BITS = AccessKind.WRITE._req_bits


@dataclass(slots=True)
class PTE:
    """One page-table entry."""

    frame: int
    perms: PagePerm
    #: classic copy-on-write marker (monolithic baseline)
    cow: bool = False
    #: free-form slot for the owning OS (μFork strategies stash the
    #: fork-sharing record here)
    note: Any = None


class PageTable:
    """A sparse vpn → PTE map (no multi-level radix detail needed)."""

    def __init__(self) -> None:
        self._entries: Dict[int, PTE] = {}

    def get(self, vpn: int) -> Optional[PTE]:
        return self._entries.get(vpn)

    def set(self, vpn: int, pte: PTE) -> None:
        self._entries[vpn] = pte

    def remove(self, vpn: int) -> PTE:
        return self._entries.pop(vpn)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Iterator[Tuple[int, PTE]]:
        return iter(self._entries.items())

    def vpns(self) -> Iterator[int]:
        return iter(self._entries.keys())


#: fault handler: (space, vaddr, kind) -> True if resolved (retry access)
FaultHandler = Callable[["AddressSpace", int, AccessKind], bool]


class AddressSpace:
    """A page table plus access methods with fault dispatch.

    ``machine`` is any object exposing ``config``, ``costs``, ``clock``,
    ``counters``, ``phys`` and ``codec`` (see :class:`repro.machine.Machine`).
    """

    def __init__(self, machine: Any, name: str = "as") -> None:
        self.machine = machine
        self.name = name
        self.page_table = PageTable()
        self.fault_handler: Optional[FaultHandler] = None
        self._page_size = machine.config.page_size
        #: host-side page-walk cache: vpn -> (PTE, Frame).  Entries are
        #: only trusted while the generation stamp matches, the live
        #: ``pte.perms`` is re-checked on every hit (so permission
        #: narrowing — CoW/CoPA sharing — can never be bypassed), and
        #: every single-vpn table edit (map/unmap/replace_frame) pops
        #: exactly its own entry.  See :mod:`repro.perf`.
        self._walk_cache: Dict[int, Tuple[PTE, Frame]] = {}
        #: generation of the cached entries: the machine-wide TLB
        #: flush/shootdown generation (cross-core invalidations clear
        #: the whole cache)
        self._walk_stamp = -1
        #: size -> int(round(memcpy_ns_per_byte * size)); sound because
        #: ``machine.costs`` is a frozen dataclass assigned once at
        #: machine construction
        self._charge_memo: Dict[int, int] = {}
        self._perf = False
        try:
            from repro import perf as _perf
            self._perf = _perf.enabled()
        except ImportError:  # pragma: no cover - bootstrap ordering
            pass

    # -- mapping ------------------------------------------------------------

    def map_page(self, vpn: int, frame: int, perms: PagePerm,
                 incref: bool = False, cow: bool = False,
                 note: Any = None) -> PTE:
        if vpn in self.page_table:
            raise ValueError(f"vpn {vpn:#x} already mapped in {self.name}")
        if incref:
            self.machine.phys.incref(frame)
        pte = PTE(frame=frame, perms=perms, cow=cow, note=note)
        self.page_table.set(vpn, pte)
        # single-vpn edit: only this translation can change, so the walk
        # cache drops exactly this entry instead of a full generation
        # bump (which would clear the whole cache on every CoW break)
        self._walk_cache.pop(vpn, None)
        return pte

    def unmap_page(self, vpn: int, decref: bool = True) -> int:
        pte = self.page_table.remove(vpn)
        if decref:
            self.machine.phys.decref(pte.frame)
        self._walk_cache.pop(vpn, None)
        return pte.frame

    def protect_page(self, vpn: int, perms: PagePerm) -> None:
        pte = self.page_table.get(vpn)
        if pte is None:
            raise KeyError(f"vpn {vpn:#x} not mapped")
        pte.perms = perms

    def replace_frame(self, vpn: int, frame: int, decref_old: bool = True) -> None:
        """Point an existing mapping at a different frame (CoW break)."""
        pte = self.page_table.get(vpn)
        if pte is None:
            raise KeyError(f"vpn {vpn:#x} not mapped")
        if decref_old:
            self.machine.phys.decref(pte.frame)
        pte.frame = frame
        # the cached tuple holds the *old* Frame object; drop this vpn
        self._walk_cache.pop(vpn, None)

    # -- translation with fault dispatch ---------------------------------------

    def _vpn(self, vaddr: int) -> int:
        return vaddr // self._page_size

    def resolve(self, vaddr: int, kind: AccessKind,
                privileged: bool = False) -> Tuple[Frame, int]:
        """Translate an address, dispatching faults at most once.

        With :mod:`repro.perf` enabled, successful walks are served
        from a generation-stamped cache: one dict probe plus a raw
        permission-bit check.  The stamp folds in this table's edit
        generation and the machine's TLB flush/shootdown generation,
        so any PTE write or cross-core invalidation drops every cached
        translation before it can be reused — simulated semantics
        (fault dispatch order, SMP shootdown behaviour) are identical
        with the cache on or off.
        """
        page_size = self._page_size
        vpn = vaddr // page_size
        if self._perf:
            stamp = self.machine.translation_gen
            if stamp != self._walk_stamp:
                self._walk_cache.clear()
                self._walk_stamp = stamp
            else:
                hit = self._walk_cache.get(vpn)
                if hit is not None:
                    pte, frame = hit
                    if privileged:
                        return frame, vaddr % page_size
                    bits = kind._req_bits
                    if (int(pte.perms) & bits) == bits:
                        return frame, vaddr % page_size
        for attempt in (0, 1):
            pte = self.page_table.get(vpn)
            if pte is not None:
                if privileged:
                    frame = self.machine.phys.frame(pte.frame)
                    # only perm-complete walks are cached: a privileged
                    # bypass must never satisfy a later user access
                    return frame, vaddr % page_size
                if self._perf:
                    bits = kind._req_bits
                    granted = (int(pte.perms) & bits) == bits
                else:
                    required = _REQUIRED_PERM[kind]
                    granted = (pte.perms & required) == required
                if granted:
                    frame = self.machine.phys.frame(pte.frame)
                    if self._perf:
                        self._walk_cache[vpn] = (pte, frame)
                    return frame, vaddr % page_size
            if attempt == 1:
                break
            if not self._dispatch_fault(vaddr, kind):
                break
        if self.page_table.get(vpn) is None:
            raise UnmappedAddressError(vaddr, _ACCESS_NAME[kind])
        raise ProtectionError(vaddr, _ACCESS_NAME[kind])

    def _dispatch_fault(self, vaddr: int, kind: AccessKind) -> bool:
        """Charge the fault and hand it to the registered handler.

        Observable as ``hw.paging.fault.<kind>`` counters — the
        ``cap_load`` kind counts CoPA's fault-on-capability-load traps.
        """
        machine = self.machine
        machine.clock.advance(machine.costs.page_fault_ns, "page_fault")
        if self._perf:
            machine.counters.add(kind._fault_counter)
            machine.obs.count(kind._fault_obs)
            machine.trace("page_fault", vaddr=vaddr, kind=kind._nm,
                          space=self.name)
        else:
            machine.counters.add(f"fault_{_ACCESS_NAME[kind]}")
            machine.obs.count(f"hw.paging.fault.{_ACCESS_NAME[kind]}")
            machine.trace("page_fault", vaddr=vaddr, kind=_ACCESS_NAME[kind],
                          space=self.name)
        if self.fault_handler is None:
            return False
        return self.fault_handler(self, vaddr, kind)

    # -- byte access ------------------------------------------------------------

    def read(self, vaddr: int, size: int, privileged: bool = False,
             charge: bool = True) -> bytes:
        """Read bytes (may span pages)."""
        if self._perf:
            offset = vaddr % self._page_size
            if offset + size <= self._page_size:
                # single-page fast path: no accumulator, one frame read.
                # The walk-cache probe, the frame read and the clock
                # charge are all inlined (bit-identical to the layered
                # path: same stamp + raw perm-bit checks as the hit
                # path in :meth:`resolve`, same memcpy charge rounded
                # through the memo); any miss falls back to resolve.
                machine = self.machine
                frame = None
                if machine.translation_gen == self._walk_stamp:
                    hit = self._walk_cache.get(vaddr // self._page_size)
                    if hit is not None:
                        pte, frame = hit
                        if not privileged and \
                                (pte.perms._value_ & _READ_BITS) != _READ_BITS:
                            frame = None
                if frame is None:
                    frame, offset = self.resolve(vaddr, AccessKind.READ,
                                                 privileged)
                data = bytes(frame.data[offset:offset + size])
                if charge:
                    ns_int = self._charge_memo.get(size)
                    if ns_int is None:
                        ns_int = int(round(
                            machine.costs.memcpy_ns_per_byte * size))
                        self._charge_memo[size] = ns_int
                    clock = machine.clock
                    clock._now_ns += ns_int
                    buckets = clock.buckets
                    buckets["mem_read"] = buckets.get("mem_read", 0) + ns_int
                    if clock.observer is not None:
                        clock.observer(ns_int, "mem_read")
                return data
        out = bytearray()
        remaining = size
        addr = vaddr
        while remaining > 0:
            frame, offset = self.resolve(addr, AccessKind.READ, privileged)
            chunk = min(remaining, self._page_size - offset)
            out += frame.read(offset, chunk)
            addr += chunk
            remaining -= chunk
        if charge:
            self.machine.clock.advance(
                self.machine.costs.memcpy_ns_per_byte * size, "mem_read"
            )
        return bytes(out)

    def write(self, vaddr: int, data: bytes, privileged: bool = False,
              charge: bool = True) -> None:
        """Write bytes (may span pages); clears tags of touched granules."""
        if self._perf:
            offset = vaddr % self._page_size
            size = len(data)
            if offset + size <= self._page_size:
                # single-page fast path: skips the loop bookkeeping and
                # the per-chunk payload copy the spanning path makes.
                # Walk-cache probe, byte store + batched tag clear
                # (same cleared set as :meth:`Frame.write`) and the
                # memoised memcpy charge are all inlined, as in
                # :meth:`read`.
                machine = self.machine
                frame = None
                if machine.translation_gen == self._walk_stamp:
                    hit = self._walk_cache.get(vaddr // self._page_size)
                    if hit is not None:
                        pte, frame = hit
                        if not privileged and \
                                (pte.perms._value_ & _WRITE_BITS) != _WRITE_BITS:
                            frame = None
                if frame is None:
                    frame, offset = self.resolve(vaddr, AccessKind.WRITE,
                                                 privileged)
                frame.data[offset:offset + size] = data
                first = offset // CAP_SIZE
                count = (offset + size - 1) // CAP_SIZE + 1 - first
                if count > 0:
                    frame.tags[first:first + count] = \
                        _ZEROS[:count] if count <= len(_ZEROS) \
                        else bytes(count)
                if charge:
                    ns_int = self._charge_memo.get(size)
                    if ns_int is None:
                        ns_int = int(round(
                            machine.costs.memcpy_ns_per_byte * size))
                        self._charge_memo[size] = ns_int
                    clock = machine.clock
                    clock._now_ns += ns_int
                    buckets = clock.buckets
                    buckets["mem_write"] = buckets.get("mem_write", 0) + ns_int
                    if clock.observer is not None:
                        clock.observer(ns_int, "mem_write")
                return
        offset_in_data = 0
        addr = vaddr
        remaining = len(data)
        while remaining > 0:
            frame, offset = self.resolve(addr, AccessKind.WRITE, privileged)
            chunk = min(remaining, self._page_size - offset)
            frame.write(offset, data[offset_in_data:offset_in_data + chunk])
            addr += chunk
            offset_in_data += chunk
            remaining -= chunk
        if charge:
            self.machine.clock.advance(
                self.machine.costs.memcpy_ns_per_byte * len(data), "mem_write"
            )

    # -- capability access ----------------------------------------------------------

    def load_cap(self, vaddr: int, privileged: bool = False) -> Capability:
        """Load one capability granule (subject to the CoPA fault bit)."""
        kind = AccessKind.CAP_LOAD
        frame, offset = self.resolve(vaddr, kind, privileged)
        return frame.load_cap(offset, self.machine.codec)

    def store_cap(self, vaddr: int, cap: Capability,
                  privileged: bool = False) -> None:
        frame, offset = self.resolve(vaddr, AccessKind.WRITE, privileged)
        frame.store_cap(offset, cap, self.machine.codec)

    # -- accounting -----------------------------------------------------------------

    def resident_bytes(self, lo_vaddr: int, hi_vaddr: int,
                       proportional: bool = True) -> float:
        """Resident set of the VA range [lo, hi).

        With ``proportional`` (the paper's metric, §5.2) each mapped page
        contributes ``page_size / frame_refcount`` so memory shared with
        another process is split between its sharers.
        """
        lo_vpn = lo_vaddr // self._page_size
        hi_vpn = (hi_vaddr + self._page_size - 1) // self._page_size
        total = 0.0
        for vpn, pte in self.page_table.entries():
            if lo_vpn <= vpn < hi_vpn:
                if proportional:
                    total += self._page_size / self.machine.phys.refcount(pte.frame)
                else:
                    total += self._page_size
        return total

    def mapped_pages(self, lo_vaddr: int, hi_vaddr: int) -> int:
        lo_vpn = lo_vaddr // self._page_size
        hi_vpn = (hi_vaddr + self._page_size - 1) // self._page_size
        return sum(
            1 for vpn in self.page_table.vpns() if lo_vpn <= vpn < hi_vpn
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AddressSpace({self.name!r}, pages={len(self.page_table)})"


# re-export for convenience
__all__ = [
    "AccessKind",
    "AddressSpace",
    "FaultHandler",
    "PTE",
    "PagePerm",
    "PageTable",
    "CAP_SIZE",
]

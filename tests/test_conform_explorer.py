"""The bounded interleaving explorer: coverage, determinism, and
invariant enforcement — including under injected faults.
"""

from __future__ import annotations

import json

import pytest

import repro.conform.explorer as explorer_mod
from repro.chaos import ChaosEngine, FaultMix
from repro.conform.dsl import Scenario
from repro.conform.explorer import _run_schedule, explore
from repro.conform.invariants import (
    check_end_state,
    check_invariants,
    frame_baseline,
)
from repro.conform.scenarios import by_name, corpus
from repro.conform.simrun import STRATEGIES, boot_sim, run_sim, SimRun
from repro.errors import SimError
from repro.machine import Machine


def test_contended_pipe_reaches_500_schedules():
    """The acceptance bar: ≥500 distinct depth-3 schedules on a
    contention-heavy scenario, zero invariant violations."""
    result = explore(by_name("contended-pipe"), strategy="copa",
                     num_cpus=2, seed=7, depth_bound=3, budget=520)
    assert result["schedules"] >= 500
    assert result["violations"] == []


def test_exploration_is_deterministic():
    first = explore(by_name("pipe-grandchild"), strategy="coa",
                    num_cpus=2, seed=11, depth_bound=3, budget=60)
    second = explore(by_name("pipe-grandchild"), strategy="coa",
                     num_cpus=2, seed=11, depth_bound=3, budget=60)
    assert first == second


def test_sleep_sets_prune_independent_interleavings():
    """Two children on disjoint pipes: swapping their ops commutes, so
    the explorer must prune some branches."""
    result = explore(by_name("pipe-two-children"), strategy="copa",
                     num_cpus=2, seed=7, depth_bound=3, budget=200)
    assert result["pruned"] > 0
    assert result["violations"] == []


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_corpus_sweep_no_violations(strategy):
    """A shallow sweep of every scenario under every strategy: kernel
    invariants hold at every preemption point of every schedule."""
    for scenario in corpus():
        result = explore(scenario, strategy=strategy, num_cpus=2,
                         seed=7, depth_bound=2, budget=15)
        assert result["violations"] == [], (
            f"{scenario.name} [{strategy}]: {result['violations'][:3]}")


def test_budget_counts_executed_schedules_exactly(monkeypatch):
    """The budget is spent on *executed* schedules, not on frontier
    entries: a run with budget N performs exactly N schedule
    executions (canonical run included) when at least N are
    reachable."""
    executed = []
    real = explorer_mod._run_schedule

    def counting(*args, **kwargs):
        executed.append(args[4])        # the schedule
        return real(*args, **kwargs)

    monkeypatch.setattr(explorer_mod, "_run_schedule", counting)
    result = explore(by_name("contended-pipe"), strategy="copa",
                     num_cpus=2, seed=7, depth_bound=3, budget=37)
    assert len(executed) == 37
    assert result["schedules"] == 37
    assert executed[0] == {}            # canonical always runs first


def test_budget_one_runs_only_the_canonical_schedule(monkeypatch):
    executed = []
    real = explorer_mod._run_schedule

    def counting(*args, **kwargs):
        executed.append(args[4])
        return real(*args, **kwargs)

    monkeypatch.setattr(explorer_mod, "_run_schedule", counting)
    result = explore(by_name("pipe-hello"), strategy="copa",
                     num_cpus=2, seed=7, depth_bound=3, budget=1)
    assert executed == [{}]
    assert result["schedules"] == 1
    assert result["max_depth"] == 0
    assert result["frontier_left"] > 0  # work remained, budget stopped us


def test_budget_below_one_is_rejected():
    with pytest.raises(ValueError):
        explore(by_name("pipe-hello"), budget=0)


def test_drained_frontier_stops_short_of_budget():
    """When fewer schedules are reachable than the budget allows,
    exploration executes exactly the reachable set and reports an
    empty frontier — never re-running or padding to the budget."""
    result = explore(by_name("pipe-hello"), strategy="copa", num_cpus=2,
                     seed=0, depth_bound=3, budget=5000)
    assert result["frontier_left"] == 0
    assert 0 < result["schedules"] < 5000


def test_depth_five_reachable_within_a_small_budget():
    """The depth-first frontier priority makes deep deviations
    reachable without burning the budget on breadth."""
    result = explore(by_name("contended-pipe"), strategy="copa",
                     num_cpus=2, seed=0, depth_bound=5, budget=12)
    assert result["max_depth"] >= 5
    assert result["violations"] == []


def test_chaos_exploration_is_deterministic_and_never_silent():
    mix = "default=0.0,core.ufork.abort.*=0.2,kernel.syscall.eintr=0.1"
    first = explore(by_name("pipe-grandchild"), strategy="copa",
                    num_cpus=2, seed=5, depth_bound=3, budget=40,
                    chaos_mix=mix)
    second = explore(by_name("pipe-grandchild"), strategy="copa",
                     num_cpus=2, seed=5, depth_bound=3, budget=40,
                     chaos_mix=mix)
    assert json.dumps(first, sort_keys=True) == \
        json.dumps(second, sort_keys=True)
    assert first["chaos"] is True
    # a hot mix kills some schedules; every death is counted, and an
    # injected fault is never promoted to a kernel violation
    assert first["chaos_deaths"] > 0
    assert first["violations"] == []


def test_filed_violation_replays_byte_identically(monkeypatch):
    """The reproduction contract: a violation's filed ``(seed,
    schedule)`` pair, replayed through ``_run_schedule``, reproduces
    the violation byte-for-byte."""
    from repro.hw.phys import PhysicalMemory

    def leaky_decref(self, number):
        frame = self.frame(number)
        if frame.refcount > 1:
            frame.refcount -= 1
        # the final release is silently dropped: the frame stays
        # allocated, so the end-state audit must see a leak

    monkeypatch.setattr(PhysicalMemory, "decref", leaky_decref)
    result = explore(by_name("pipe-hello"), strategy="copa", num_cpus=2,
                     seed=3, depth_bound=2, budget=6)
    leaks = [v for v in result["violations"] if v["kind"] == "leak"]
    assert leaks, "the broken kernel must be caught"
    # replay a non-canonical schedule if one was filed
    filed = next((v for v in reversed(leaks) if v["schedule"]), leaks[0])
    schedule = {int(k): v for k, v in filed["schedule"].items()}
    _trace, _meta, violations = _run_schedule(
        by_name("pipe-hello"), "copa", 2, filed["seed"], schedule)
    replayed = [v for v in violations if v["kind"] == "leak"]
    assert [json.dumps(v, sort_keys=True) for v in replayed] == \
        [json.dumps(v, sort_keys=True) for v in leaks
         if v["schedule"] == filed["schedule"]]


def test_schedule_divergence_is_reported():
    """A scenario falsely declared schedule-invariant is caught: the
    racy read observes different bytes under different schedules."""
    racy = Scenario("racy-read", {
        # child and parent both write; read order depends on schedule
        "main": (("pipe", "p"), ("fork", "w"), ("write", "p.w", "A"),
                 ("read", "p.r", 2), ("wait", "w1"), ("exit", 0)),
        "w": (("write", "p.w", "B"), ("exit", 0)),
    }, schedule_invariant=True)
    result = explore(racy, strategy="copa", num_cpus=2, seed=7,
                     depth_bound=2, budget=40)
    kinds = {violation["kind"] for violation in result["violations"]}
    assert "schedule-divergence" in kinds
    # and every violation carries its reproduction pair
    for violation in result["violations"]:
        assert violation["seed"] == 7
        assert isinstance(violation["schedule"], dict)


@pytest.mark.parametrize("strategy", ["full", "coa", "copa"])
def test_invariants_hold_under_chaos(strategy):
    """Rollback completeness: with fault injection hammering the fork
    path, ops may fail but the kernel's bookkeeping must stay
    consistent at every step and leak nothing by the end."""
    machine = Machine(seed=13, num_cpus=2)
    engine = ChaosEngine(seed=13, mix=FaultMix.parse(
        "default=0.0,core.ufork.abort.*=0.15,kernel.syscall.eintr=0.05"))
    engine.attach(machine)
    with engine.paused():
        machine2, os_ = boot_sim(strategy, num_cpus=2, seed=13,
                                 machine=machine)
    scenario = by_name("pipe-grandchild")
    seen = []

    def on_step(os_inner, run):
        if not seen:
            seen.append(frame_baseline(os_inner))
        violations = check_invariants(os_inner)
        assert violations == [], violations

    interp = SimRun(os_, scenario, on_step=on_step)
    try:
        interp.run()
    except SimError:
        # an injected fault escaped recovery and killed the scenario —
        # allowed; consistency is what the on_step assertions enforce
        pass
    assert check_invariants(os_) == []


def test_end_state_check_spots_a_leak():
    _machine, os_ = boot_sim("copa", num_cpus=1, seed=1)
    baseline = frame_baseline(os_)
    os_.machine.phys.alloc()        # deliberately leak one frame
    problems = check_end_state(os_, baseline)
    assert any("leak" in p or "frames" in p for p in problems)

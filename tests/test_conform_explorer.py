"""The bounded interleaving explorer: coverage, determinism, and
invariant enforcement — including under injected faults.
"""

from __future__ import annotations

import pytest

from repro.chaos import ChaosEngine, FaultMix
from repro.conform.dsl import Scenario
from repro.conform.explorer import explore
from repro.conform.invariants import (
    check_end_state,
    check_invariants,
    frame_baseline,
)
from repro.conform.scenarios import by_name, corpus
from repro.conform.simrun import STRATEGIES, boot_sim, run_sim, SimRun
from repro.errors import SimError
from repro.machine import Machine


def test_contended_pipe_reaches_500_schedules():
    """The acceptance bar: ≥500 distinct depth-3 schedules on a
    contention-heavy scenario, zero invariant violations."""
    result = explore(by_name("contended-pipe"), strategy="copa",
                     num_cpus=2, seed=7, depth_bound=3, budget=520)
    assert result["schedules"] >= 500
    assert result["violations"] == []


def test_exploration_is_deterministic():
    first = explore(by_name("pipe-grandchild"), strategy="coa",
                    num_cpus=2, seed=11, depth_bound=3, budget=60)
    second = explore(by_name("pipe-grandchild"), strategy="coa",
                     num_cpus=2, seed=11, depth_bound=3, budget=60)
    assert first == second


def test_sleep_sets_prune_independent_interleavings():
    """Two children on disjoint pipes: swapping their ops commutes, so
    the explorer must prune some branches."""
    result = explore(by_name("pipe-two-children"), strategy="copa",
                     num_cpus=2, seed=7, depth_bound=3, budget=200)
    assert result["pruned"] > 0
    assert result["violations"] == []


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_corpus_sweep_no_violations(strategy):
    """A shallow sweep of every scenario under every strategy: kernel
    invariants hold at every preemption point of every schedule."""
    for scenario in corpus():
        result = explore(scenario, strategy=strategy, num_cpus=2,
                         seed=7, depth_bound=2, budget=15)
        assert result["violations"] == [], (
            f"{scenario.name} [{strategy}]: {result['violations'][:3]}")


def test_schedule_divergence_is_reported():
    """A scenario falsely declared schedule-invariant is caught: the
    racy read observes different bytes under different schedules."""
    racy = Scenario("racy-read", {
        # child and parent both write; read order depends on schedule
        "main": (("pipe", "p"), ("fork", "w"), ("write", "p.w", "A"),
                 ("read", "p.r", 2), ("wait", "w1"), ("exit", 0)),
        "w": (("write", "p.w", "B"), ("exit", 0)),
    }, schedule_invariant=True)
    result = explore(racy, strategy="copa", num_cpus=2, seed=7,
                     depth_bound=2, budget=40)
    kinds = {violation["kind"] for violation in result["violations"]}
    assert "schedule-divergence" in kinds
    # and every violation carries its reproduction pair
    for violation in result["violations"]:
        assert violation["seed"] == 7
        assert isinstance(violation["schedule"], dict)


@pytest.mark.parametrize("strategy", ["full", "coa", "copa"])
def test_invariants_hold_under_chaos(strategy):
    """Rollback completeness: with fault injection hammering the fork
    path, ops may fail but the kernel's bookkeeping must stay
    consistent at every step and leak nothing by the end."""
    machine = Machine(seed=13, num_cpus=2)
    engine = ChaosEngine(seed=13, mix=FaultMix.parse(
        "default=0.0,core.ufork.abort.*=0.15,kernel.syscall.eintr=0.05"))
    engine.attach(machine)
    with engine.paused():
        machine2, os_ = boot_sim(strategy, num_cpus=2, seed=13,
                                 machine=machine)
    scenario = by_name("pipe-grandchild")
    seen = []

    def on_step(os_inner, run):
        if not seen:
            seen.append(frame_baseline(os_inner))
        violations = check_invariants(os_inner)
        assert violations == [], violations

    interp = SimRun(os_, scenario, on_step=on_step)
    try:
        interp.run()
    except SimError:
        # an injected fault escaped recovery and killed the scenario —
        # allowed; consistency is what the on_step assertions enforce
        pass
    assert check_invariants(os_) == []


def test_end_state_check_spots_a_leak():
    _machine, os_ = boot_sim("copa", num_cpus=1, seed=1)
    baseline = frame_baseline(os_)
    os_.machine.phys.alloc()        # deliberately leak one frame
    problems = check_end_state(os_, baseline)
    assert any("leak" in p or "frames" in p for p in problems)

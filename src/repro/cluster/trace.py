"""Seed-deterministic planet-scale traffic synthesis.

One :class:`TraceConfig` describes a population of simulated users
hitting a keyed service; :func:`synthesize` streams the request records
— ``(arrival_ns, user_id, key, klass)`` — in arrival order, as a pure
function of the config.  Two same-config calls produce byte-identical
streams (:func:`trace_digest`, pinned by tests/test_cluster_determinism.py).

The traffic shape has the three properties real planet-scale serving
traces have and uniform synthetic load does not:

* **Zipf key popularity** — request keys follow a Zipf(``zipf_s``)
  rank-frequency law, so a handful of hot keys dominate and consistent
  hashing produces genuinely hot shards worth rebalancing.
* **Diurnal load waves** — the per-slot arrival rate is modulated by a
  sinusoid of amplitude ``diurnal_amplitude`` across the horizon (one
  compressed "day"), so the cluster sees troughs it can drain in and
  peaks that push it past saturation.
* **Flash crowds** — ``flash_crowds`` deterministic burst events
  multiply the rate of a few adjacent slots by up to
  ``flash_multiplier`` (decaying linearly), the p999 tail-makers.

The generator never materializes the trace: a million-request stream
costs O(slots + keys) memory.  Total request count is exact — slot
counts are apportioned from the modulated weights by largest-remainder
rounding, so ``sum(slot_counts(cfg)) == cfg.requests`` always.
"""

from __future__ import annotations

import hashlib
import math
import random
import struct
from bisect import bisect_left
from dataclasses import dataclass, replace
from typing import Iterator, List, Tuple

#: request classes (FunctionBench workloads, repro.apps.faas) and the
#: probability of each — the index into CLASSES is the trace's ``klass``
CLASSES = ("float_operation", "json_dumps", "matmul", "pyaes")
#: cumulative class probabilities, aligned with CLASSES
_CLASS_CDF = (0.80, 0.92, 0.94, 1.00)

#: one record on the wire: arrival_ns, user_id, key, klass
RECORD = struct.Struct("<QIIB")


@dataclass(frozen=True)
class TraceConfig:
    """Everything the synthesizer is a pure function of."""

    seed: int = 42
    #: total requests in the trace (exact)
    requests: int = 1_000_000
    #: key universe size (Zipf ranks; key 0 is the hottest)
    keys: int = 16_384
    #: simulated user population; user ids are drawn uniformly from it
    users: int = 4_000_000
    #: time slots across the horizon (the diurnal cycle's resolution)
    slots: int = 1_440
    #: simulated duration of one slot
    slot_ns: int = 35_000_000
    #: Zipf exponent for key popularity
    zipf_s: float = 1.1
    #: diurnal sinusoid amplitude (0 disables the wave)
    diurnal_amplitude: float = 0.6
    #: number of flash-crowd burst events
    flash_crowds: int = 2
    #: peak rate multiplier at the center of a flash crowd
    flash_multiplier: float = 8.0

    def scaled(self, **overrides) -> "TraceConfig":
        """Return a copy with individual fields overridden."""
        return replace(self, **overrides)

    @property
    def horizon_ns(self) -> int:
        return self.slots * self.slot_ns


def _zipf_cdf(keys: int, s: float) -> List[float]:
    """Cumulative Zipf(s) distribution over ``keys`` ranks."""
    weights = [1.0 / (rank ** s) for rank in range(1, keys + 1)]
    total = sum(weights)
    cdf, acc = [], 0.0
    for weight in weights:
        acc += weight
        cdf.append(acc / total)
    cdf[-1] = 1.0
    return cdf


def slot_weights(cfg: TraceConfig) -> List[float]:
    """Per-slot rate multipliers: diurnal wave × flash crowds.

    Flash-crowd centers are drawn from ``Random(cfg.seed)`` before any
    per-request randomness, so the *shape* of the day is fixed by the
    seed alone.
    """
    rng = random.Random(cfg.seed)
    weights = [
        1.0 + cfg.diurnal_amplitude
        * math.sin(2.0 * math.pi * slot / cfg.slots)
        for slot in range(cfg.slots)
    ]
    width = max(2, cfg.slots // 100)
    for _ in range(cfg.flash_crowds):
        center = rng.randrange(cfg.slots)
        for offset in range(-width, width + 1):
            slot = center + offset
            if 0 <= slot < cfg.slots:
                decay = 1.0 - abs(offset) / (width + 1)
                weights[slot] += (cfg.flash_multiplier - 1.0) * decay
    return weights


def slot_counts(cfg: TraceConfig) -> List[int]:
    """Exact per-slot request counts (largest-remainder rounding of the
    modulated weights; always sums to ``cfg.requests``)."""
    weights = slot_weights(cfg)
    total = sum(weights)
    shares = [cfg.requests * weight / total for weight in weights]
    counts = [int(share) for share in shares]
    remainder = cfg.requests - sum(counts)
    order = sorted(range(cfg.slots),
                   key=lambda t: (counts[t] - shares[t], t))
    for t in order[:remainder]:
        counts[t] += 1
    return counts


def synthesize(cfg: TraceConfig) -> Iterator[Tuple[int, int, int, int]]:
    """Stream the trace in arrival order.

    Yields ``(arrival_ns, user_id, key, klass)`` tuples.  ``klass``
    indexes :data:`CLASSES`.  Arrivals within a slot are evenly spaced;
    key, user and class are drawn from one ``Random(cfg.seed)`` stream
    (after the flash-crowd placement draws), so the whole trace is a
    pure function of the config.
    """
    counts = slot_counts(cfg)
    rng = random.Random(cfg.seed)
    for _ in range(cfg.flash_crowds):  # mirror slot_weights' draws
        rng.randrange(cfg.slots)
    zipf = _zipf_cdf(cfg.keys, cfg.zipf_s)
    users = cfg.users
    slot_ns = cfg.slot_ns
    uniform = rng.random
    c0, c1, c2 = _CLASS_CDF[0], _CLASS_CDF[1], _CLASS_CDF[2]
    for slot, count in enumerate(counts):
        if not count:
            continue
        base = slot * slot_ns
        for index in range(count):
            arrival = base + (index * slot_ns) // count
            key = bisect_left(zipf, uniform())
            user = int(uniform() * users)
            draw = uniform()
            if draw < c0:
                klass = 0
            elif draw < c1:
                klass = 1
            elif draw < c2:
                klass = 2
            else:
                klass = 3
            yield arrival, user, key, klass


def trace_digest(cfg: TraceConfig, limit: int = None) -> str:
    """SHA-256 over the packed record stream (or its first ``limit``
    records) — the byte-equality witness the determinism tests pin."""
    hasher = hashlib.sha256()
    pack = RECORD.pack
    for index, record in enumerate(synthesize(cfg)):
        if limit is not None and index >= limit:
            break
        hasher.update(pack(*record))
    return hasher.hexdigest()

"""An in-memory (ram-disk) filesystem.

The paper's Redis experiment saves database dumps "to a ram-disk,
minimizing I/O latency" (§5.1); this module is that ram-disk.  Costs:
a fixed per-operation metadata charge plus a per-byte copy charge for
data movement.
"""

from __future__ import annotations

from typing import Any, Dict, List, Union

from repro.errors import (
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
)

O_RDONLY = 0x0
O_WRONLY = 0x1
O_RDWR = 0x2
O_CREAT = 0x40
O_TRUNC = 0x200
O_APPEND = 0x400

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


class FileNode:
    """A regular file."""

    def __init__(self) -> None:
        self.data = bytearray()

    @property
    def size(self) -> int:
        return len(self.data)


class DirNode:
    """A directory."""

    def __init__(self) -> None:
        self.entries: Dict[str, Union[FileNode, "DirNode"]] = {}


class FileHandle:
    """Kernel object behind an open regular file fd."""

    def __init__(self, ramdisk: "RamDisk", node: FileNode, append: bool) -> None:
        self._ramdisk = ramdisk
        self.node = node
        self.append = append

    def read(self, desc: Any, size: int) -> bytes:
        self._ramdisk._charge_op()
        data = bytes(self.node.data[desc.offset:desc.offset + size])
        desc.offset += len(data)
        self._ramdisk._charge_bytes(len(data))
        return data

    def write(self, desc: Any, data: bytes) -> int:
        self._ramdisk._charge_op()
        if self.append:
            desc.offset = self.node.size
        end = desc.offset + len(data)
        if end > self.node.size:
            self.node.data.extend(b"\x00" * (end - self.node.size))
        self.node.data[desc.offset:end] = data
        desc.offset = end
        self._ramdisk._charge_bytes(len(data))
        return len(data)

    def seek(self, desc: Any, offset: int, whence: int) -> int:
        if whence == SEEK_SET:
            desc.offset = offset
        elif whence == SEEK_CUR:
            desc.offset += offset
        elif whence == SEEK_END:
            desc.offset = self.node.size + offset
        else:
            raise InvalidArgument(f"bad whence {whence}")
        if desc.offset < 0:
            raise InvalidArgument("negative file offset")
        return desc.offset


class RamDisk:
    """A tiny hierarchical in-memory filesystem."""

    def __init__(self, machine: Any) -> None:
        self.machine = machine
        self.root = DirNode()

    # -- cost charging ------------------------------------------------------

    def _charge_op(self) -> None:
        self.machine.charge(self.machine.costs.ramdisk_op_ns, "ramdisk_op")

    def _charge_bytes(self, n: int) -> None:
        self.machine.charge(self.machine.costs.io_copy_ns_per_byte * n,
                            "ramdisk_io")

    # -- path resolution -------------------------------------------------------

    @staticmethod
    def _split(path: str) -> List[str]:
        parts = [part for part in path.split("/") if part]
        if not parts:
            raise InvalidArgument(f"bad path {path!r}")
        return parts

    def _walk_dir(self, parts: List[str]) -> DirNode:
        node: Union[FileNode, DirNode] = self.root
        for part in parts:
            if not isinstance(node, DirNode):
                raise NotADirectory("/".join(parts))
            child = node.entries.get(part)
            if child is None:
                raise FileNotFound("/".join(parts))
            node = child
        if not isinstance(node, DirNode):
            raise NotADirectory("/".join(parts))
        return node

    def _lookup(self, path: str) -> Union[FileNode, DirNode]:
        parts = self._split(path)
        parent = self._walk_dir(parts[:-1])
        node = parent.entries.get(parts[-1])
        if node is None:
            raise FileNotFound(path)
        return node

    # -- operations ---------------------------------------------------------------

    def open(self, path: str, flags: int = O_RDONLY) -> FileHandle:
        """Open (optionally creating/truncating); returns the kernel object."""
        self._charge_op()
        parts = self._split(path)
        parent = self._walk_dir(parts[:-1])
        node = parent.entries.get(parts[-1])
        if node is None:
            if not flags & O_CREAT:
                raise FileNotFound(path)
            node = FileNode()
            parent.entries[parts[-1]] = node
        if isinstance(node, DirNode):
            raise IsADirectory(path)
        if flags & O_TRUNC:
            node.data = bytearray()
        return FileHandle(self, node, append=bool(flags & O_APPEND))

    def mkdir(self, path: str) -> None:
        self._charge_op()
        parts = self._split(path)
        parent = self._walk_dir(parts[:-1])
        if parts[-1] in parent.entries:
            raise FileExists(path)
        parent.entries[parts[-1]] = DirNode()

    def unlink(self, path: str) -> None:
        self._charge_op()
        parts = self._split(path)
        parent = self._walk_dir(parts[:-1])
        node = parent.entries.get(parts[-1])
        if node is None:
            raise FileNotFound(path)
        if isinstance(node, DirNode):
            raise IsADirectory(path)
        del parent.entries[parts[-1]]

    def rename(self, old: str, new: str) -> None:
        self._charge_op()
        old_parts = self._split(old)
        new_parts = self._split(new)
        old_parent = self._walk_dir(old_parts[:-1])
        node = old_parent.entries.get(old_parts[-1])
        if node is None:
            raise FileNotFound(old)
        new_parent = self._walk_dir(new_parts[:-1])
        del old_parent.entries[old_parts[-1]]
        new_parent.entries[new_parts[-1]] = node

    def stat_size(self, path: str) -> int:
        self._charge_op()
        node = self._lookup(path)
        if isinstance(node, DirNode):
            raise IsADirectory(path)
        return node.size

    def exists(self, path: str) -> bool:
        try:
            self._lookup(path)
            return True
        except (FileNotFound, NotADirectory):
            return False

    def listdir(self, path: str = "/") -> List[str]:
        self._charge_op()
        if path == "/":
            return sorted(self.root.entries)
        node = self._lookup(path)
        if not isinstance(node, DirNode):
            raise NotADirectory(path)
        return sorted(node.entries)

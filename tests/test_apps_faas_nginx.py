"""Tests for the Zygote FaaS runtime and MiniNginx workloads."""

import pytest

from repro.apps.faas import ZygoteRuntime, faas_image, float_operation
from repro.apps.guest import GuestContext
from repro.apps.nginx import (
    MiniNginx,
    REQUEST_COMPUTE_UNITS,
    RESPONSE_BODY,
    WrkClient,
    nginx_image,
)
from repro.baselines import MonolithicOS
from repro.core import CopyStrategy, UForkOS
from repro.machine import Machine


def boot_zygote(os_cls=UForkOS, **kwargs):
    os_ = os_cls(machine=Machine(), **kwargs)
    ctx = GuestContext(os_, os_.spawn(faas_image(), "micropython"))
    runtime = ZygoteRuntime(ctx)
    runtime.warm()
    return os_, runtime


class TestZygote:
    def test_warm_builds_module_table(self):
        _os, runtime = boot_zygote()
        names = runtime.modules()
        assert len(names) == runtime.module_count
        assert names[0] == b"module_000"
        assert names[-1] == b"module_%03d" % (runtime.module_count - 1)

    @pytest.mark.parametrize("os_cls", [UForkOS, MonolithicOS])
    def test_request_forks_and_runs(self, os_cls):
        os_, runtime = boot_zygote(os_cls)
        result = runtime.handle_request()
        assert result.ok
        assert result.modules_seen == 4
        assert os_.process_count() == 1  # child reaped

    def test_many_requests_from_one_zygote(self):
        os_, runtime = boot_zygote()
        pids = {runtime.handle_request().pid for _ in range(10)}
        assert len(pids) == 10  # each request got a fresh μprocess

    def test_zygote_state_undamaged_by_requests(self):
        _os, runtime = boot_zygote()
        before = runtime.modules()
        for _ in range(5):
            runtime.handle_request()
        assert runtime.modules() == before

    def test_float_operation_charges_compute(self):
        os_, runtime = boot_zygote()
        before = os_.machine.clock.now_ns
        float_operation(runtime.ctx)
        elapsed = os_.machine.clock.now_ns - before
        assert elapsed >= 400_000  # ~500 μs of work

    def test_request_latency_lower_on_ufork(self):
        latencies = {}
        for os_cls in (UForkOS, MonolithicOS):
            os_, runtime = boot_zygote(os_cls)
            runtime.handle_request()  # warm the paths
            with os_.machine.clock.measure() as watch:
                runtime.handle_request()
            latencies[os_cls] = watch.elapsed_ns
        assert latencies[UForkOS] < latencies[MonolithicOS]


def boot_nginx(os_cls=UForkOS, workers=1, **kwargs):
    os_ = os_cls(machine=Machine(), **kwargs)
    master = GuestContext(os_, os_.spawn(nginx_image(), "nginx"))
    server = MiniNginx(master)
    server.fork_workers(workers)
    client = GuestContext(os_, os_.spawn(nginx_image(), "wrk"))
    wrk = WrkClient(client)
    return os_, server, wrk


class TestNginx:
    @pytest.mark.parametrize("os_cls", [UForkOS, MonolithicOS])
    def test_serve_one_request(self, os_cls):
        os_, server, wrk = boot_nginx(os_cls)
        fd = wrk.issue()
        stats = server.serve_one(server.workers[0])
        response = wrk.complete(fd)
        assert response.endswith(RESPONSE_BODY)
        assert stats.total_ns > REQUEST_COMPUTE_UNITS  # compute charged
        assert 0 < stats.io_wait_ns < stats.total_ns

    def test_workers_share_listening_socket(self):
        os_, server, wrk = boot_nginx(workers=3)
        fds = [wrk.issue() for _ in range(3)]
        for worker_ctx, fd in zip(server.workers, fds):
            server.serve_one(worker_ctx)
        for fd in fds:
            assert wrk.complete(fd).startswith(b"HTTP/1.1 200")

    def test_round_robin_many_requests(self):
        os_, server, wrk = boot_nginx(workers=2)
        for index in range(20):
            fd = wrk.issue()
            server.serve_one(server.workers[index % 2])
            wrk.complete(fd)

    def test_shutdown_reaps_workers(self):
        os_, server, _wrk = boot_nginx(workers=3)
        assert os_.process_count() == 5  # master + 3 workers + wrk
        server.shutdown()
        assert os_.process_count() == 2

    def test_request_decomposition_feeds_concurrency_model(self):
        os_, server, wrk = boot_nginx()
        fd = wrk.issue()
        stats = server.serve_one(server.workers[0])
        wrk.complete(fd)
        assert stats.cpu_ns + stats.io_wait_ns == stats.total_ns

    def test_cheaper_per_request_on_ufork_single_worker(self):
        per_req = {}
        for os_cls in (UForkOS, MonolithicOS):
            os_, server, wrk = boot_nginx(os_cls)
            # warm
            fd = wrk.issue()
            server.serve_one(server.workers[0])
            wrk.complete(fd)
            fd = wrk.issue()
            stats = server.serve_one(server.workers[0])
            wrk.complete(fd)
            per_req[os_cls] = stats.total_ns
        assert per_req[UForkOS] < per_req[MonolithicOS]

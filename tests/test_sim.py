"""Tests for the discrete-event concurrency models (Figs 6/7 machinery)."""

import pytest

from repro.sim import (
    EventSim,
    simulate_closed_workers,
    simulate_fork_pipeline,
)

SECOND = 1_000_000_000


class TestEventSim:
    def test_events_run_in_time_order(self):
        sim = EventSim()
        order = []
        sim.schedule(30, lambda: order.append("c"))
        sim.schedule(10, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("b"))
        sim.run_until(100)
        assert order == ["a", "b", "c"]
        assert sim.now == 100

    def test_same_time_fifo(self):
        sim = EventSim()
        order = []
        sim.schedule(5, lambda: order.append(1))
        sim.schedule(5, lambda: order.append(2))
        sim.run_until(10)
        assert order == [1, 2]

    def test_events_past_deadline_not_run(self):
        sim = EventSim()
        ran = []
        sim.schedule(50, lambda: ran.append(True))
        sim.run_until(40)
        assert not ran

    def test_schedule_in_past_rejected(self):
        sim = EventSim()
        sim.schedule(10, lambda: sim.schedule(5, lambda: None))
        with pytest.raises(ValueError):
            sim.run_until(20)

    def test_cascading_events(self):
        sim = EventSim()
        count = []

        def tick():
            count.append(sim.now)
            if sim.now < 50:
                sim.schedule(sim.now + 10, tick)

        sim.schedule(0, tick)
        sim.run_until(100)
        assert count == [0, 10, 20, 30, 40, 50]


class TestForkPipeline:
    def test_fork_bound_regime(self):
        """When fork is slow, throughput ~ 1/fork regardless of cores."""
        result = simulate_fork_pipeline(
            fork_ns=1_000_000, child_ns=100_000, worker_cores=3,
            duration_ns=SECOND,
        )
        assert result.throughput_per_s == pytest.approx(1000, rel=0.05)

    def test_worker_bound_regime(self):
        """When fork is fast, throughput ~ cores / child time."""
        result = simulate_fork_pipeline(
            fork_ns=10_000, child_ns=1_000_000, worker_cores=3,
            duration_ns=SECOND,
        )
        assert result.throughput_per_s == pytest.approx(3000, rel=0.05)

    def test_scales_with_cores_until_fork_bound(self):
        results = [
            simulate_fork_pipeline(200_000, 500_000, cores,
                                   duration_ns=SECOND).throughput_per_s
            for cores in (1, 2, 3)
        ]
        assert results[1] > 1.8 * results[0]
        # at 3 cores the 200 us fork caps the rate at ~5000/s
        assert results[2] == pytest.approx(5000, rel=0.1)

    def test_zero_duration(self):
        result = simulate_fork_pipeline(1000, 1000, 1, duration_ns=0)
        assert result.completions == 0
        assert result.throughput_per_s == 0.0


class TestClosedWorkers:
    def test_single_worker_rate(self):
        result = simulate_closed_workers(
            cpu_ns=50_000, io_ns=50_000, workers=1, cores=1,
            duration_ns=SECOND,
        )
        assert result.throughput_per_s == pytest.approx(10_000, rel=0.02)

    def test_workers_overlap_io_on_one_core(self):
        """The Fig 7 effect: extra workers fill the I/O gaps."""
        one = simulate_closed_workers(80_000, 20_000, workers=1, cores=1,
                                      duration_ns=SECOND)
        three = simulate_closed_workers(80_000, 20_000, workers=3, cores=1,
                                        duration_ns=SECOND)
        assert three.throughput_per_s > one.throughput_per_s
        # but bounded by the CPU: at most 1/cpu
        assert three.throughput_per_s <= 1e9 / 80_000 * 1.01

    def test_scales_with_cores(self):
        one = simulate_closed_workers(100_000, 10_000, workers=1, cores=1,
                                      duration_ns=SECOND)
        three = simulate_closed_workers(100_000, 10_000, workers=3, cores=3,
                                        duration_ns=SECOND)
        assert three.throughput_per_s == pytest.approx(
            3 * one.throughput_per_s, rel=0.05
        )

    def test_big_kernel_lock_limits_multicore(self):
        """Unikraft's big kernel lock (§4.5): serialized kernel time caps
        multicore scaling."""
        free = simulate_closed_workers(100_000, 0, workers=4, cores=4,
                                       duration_ns=SECOND,
                                       kernel_lock_fraction=0.0)
        locked = simulate_closed_workers(100_000, 0, workers=4, cores=4,
                                         duration_ns=SECOND,
                                         kernel_lock_fraction=1.0)
        assert locked.throughput_per_s < 0.35 * free.throughput_per_s
        # fully-serialized kernel ~ single-core rate
        assert locked.throughput_per_s == pytest.approx(10_000, rel=0.1)

    def test_lock_irrelevant_on_one_core(self):
        base = simulate_closed_workers(50_000, 5_000, workers=2, cores=1,
                                       duration_ns=SECOND)
        locked = simulate_closed_workers(50_000, 5_000, workers=2, cores=1,
                                         duration_ns=SECOND,
                                         kernel_lock_fraction=0.9)
        assert locked.throughput_per_s >= 0.9 * base.throughput_per_s

"""The chaos workload runner behind ``python -m repro.harness chaos``.

Drives a randomized-but-deterministic guest workload (forks, pipes,
files, heap churn) on a μFork OS while a :class:`ChaosEngine` injects
faults on its seed-driven schedule.  The run must *survive*: every
injected fault is either retried, degraded around, or rolled back, and
the workload's own assertions (relocated heaps, byte-exact pipe and
file round-trips) check that survival never corrupts state.

Everything is a pure function of ``seed``: the op sequence comes from
``random.Random(seed)``, the fault schedule from the engine's keyed
hashes, and the final :func:`kernel_state_digest` fingerprints the
surviving kernel, so two same-seed runs must agree byte-for-byte
(tests/test_chaos_determinism.py).

This module imports the full OS stack, so it intentionally is *not*
re-exported from :mod:`repro.chaos` (which the kernel itself imports).
"""

from __future__ import annotations

import hashlib
import json
import os as _os
import random
from typing import Any, Dict, List, Optional

from repro.chaos.engine import ChaosEngine, FaultMix

#: schema tag for the summary dict / ``*.chaos.json`` sidecar
RUN_SCHEMA = "repro.chaos.run/v1"

#: default per-point probability when the CLI gets no ``--fault-mix``
DEFAULT_MIX = "default=0.02"


def kernel_state_digest(os_: Any) -> str:
    """A stable fingerprint of the kernel's externally visible state.

    Covers exactly the state a leaked resource would perturb: the
    simulated clock, allocated frame count, the process table, the
    region reservation map, per-process fd counts, and the event
    counters.  Two same-seed chaos runs must produce identical digests;
    a rollback that leaks anything changes the digest and fails the
    determinism tier.
    """
    machine = os_.machine
    procs = sorted(
        (proc.pid, proc.name, proc.alive, proc.region_base,
         len(getattr(proc.fdtable, "_slots", {})))
        for proc in os_.procs.all()
    )
    state = {
        "clock_ns": machine.clock.now_ns,
        "allocated_frames": machine.phys.allocated_frames,
        "procs": procs,
        "reserved": sorted(os_.vspace.reserved_areas()),
        "counters": machine.counters.snapshot(),
    }
    blob = json.dumps(state, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def run_chaos(seed: int = 7, iterations: int = 200,
              mix: str = DEFAULT_MIX,
              obs_dir: Optional[str] = None) -> Dict[str, Any]:
    """Run the chaos workload; returns the JSON-ready summary dict.

    With ``obs_dir`` set, writes two sidecars there:
    ``chaos-<seed>.obs.json`` (the ``repro.obs/v1`` metrics export) and
    ``chaos-<seed>.chaos.json`` (engine schedule + this summary).
    """
    from repro.apps.guest import GuestContext
    from repro.apps.hello import hello_world_image
    from repro.core import CopyStrategy, IsolationConfig, UForkOS
    from repro.errors import SimError
    from repro.machine import Machine
    from repro.obs import to_json, write_export

    machine = Machine(seed=seed)
    machine.obs.enable()
    engine = ChaosEngine(seed=seed, mix=FaultMix.parse(mix))
    engine.attach(machine)

    with engine.paused():  # boot and spawn are not chaos targets
        os_ = UForkOS(machine=machine, copy_strategy=CopyStrategy.COPA,
                      isolation=IsolationConfig.fault())
        parent = GuestContext(os_, os_.spawn(hello_world_image(), "chaos"))
        parent.syscall("mkdir", "/chaos")

    rng = random.Random(seed)
    ops = {"fork": 0, "pipe": 0, "file": 0, "malloc": 0}
    failures: Dict[str, int] = {}
    for index in range(iterations):
        op = rng.choice(("fork", "pipe", "file", "malloc"))
        children: List[GuestContext] = []
        try:
            if op == "fork":
                _op_fork(parent, children, rng)
            elif op == "pipe":
                _op_pipe(parent, children, rng, index)
            elif op == "file":
                _op_file(parent, rng, index)
            else:
                _op_malloc(parent, rng)
            ops[op] += 1
        except SimError as exc:
            # a fault escaped every recovery path (retry budget
            # exhausted, alloc failure, ...) — the *workload* absorbs
            # it, the kernel must already be consistent
            failures[type(exc).__name__] = \
                failures.get(type(exc).__name__, 0) + 1
            machine.obs.count("chaos.run.op_failures")
        finally:
            _reap(parent, children, engine)

    export = machine.obs.export()
    summary = {
        "schema": RUN_SCHEMA,
        "seed": seed,
        "iterations": iterations,
        "mix": engine.mix.to_spec(),
        "ops": ops,
        "op_failures": dict(sorted(failures.items())),
        "injected": sum(engine.fired.values()),
        "injected_by_point": dict(sorted(engine.fired.items())),
        "recovered": sum(engine.recovered.values()),
        "degrade_tiers": engine.degrade_tiers(),
        "alive_processes": os_.process_count(),
        "allocated_frames": machine.phys.allocated_frames,
        "clock_ns": machine.clock.now_ns,
        "kernel_state_digest": kernel_state_digest(os_),
        "obs_export_sha256": hashlib.sha256(
            to_json(export).encode("utf-8")).hexdigest(),
    }
    if obs_dir is not None:
        _os.makedirs(obs_dir, exist_ok=True)
        write_export(export, _os.path.join(obs_dir,
                                           f"chaos-{seed}.obs.json"))
        from repro.harness.reportio import write_report
        sidecar = {"run": summary, "engine": engine.export()}
        write_report(sidecar,
                     _os.path.join(obs_dir, f"chaos-{seed}.chaos.json"))
    return summary


# ----------------------------------------------------------------------
# Workload ops (each asserts its own end-to-end correctness)
# ----------------------------------------------------------------------

def _op_fork(parent: Any, children: List[Any], rng: random.Random) -> None:
    """Fork; the child proves its heap was copied *and* relocated."""
    marker = rng.randrange(2 ** 32)
    cap = parent.malloc(64)
    parent.store_u64(cap, marker)
    parent.store_cap(cap, cap, offset=16)  # a capability to relocate
    child = parent.fork()
    children.append(child)
    child_cap = cap.rebased(child.proc.region_base
                            - parent.proc.region_base)
    assert child.load_u64(child_cap) == marker
    loaded = child.load_cap(child_cap, offset=16)
    assert loaded.base == child_cap.base, "child capability not relocated"
    parent.free(cap)


def _op_pipe(parent: Any, children: List[Any], rng: random.Random,
             index: int) -> None:
    """fork + pipe round-trip; short writes must not lose bytes."""
    read_fd, write_fd = parent.syscall("pipe")
    payload = bytes(rng.randrange(256)
                    for _ in range(rng.randrange(64, 512)))
    child = parent.fork()
    children.append(child)
    child.write_bytes(write_fd, payload)
    got = parent.read_bytes(read_fd, len(payload))
    assert got == payload, f"pipe round-trip corrupted at op {index}"
    parent.syscall("close", read_fd)
    parent.syscall("close", write_fd)


def _op_file(parent: Any, rng: random.Random, index: int) -> None:
    """RAM-disk file round-trip under injected EINTR/short I/O."""
    from repro.kernel.vfs import O_CREAT, O_RDWR

    path = f"/chaos/f{index}"
    payload = bytes(rng.randrange(256)
                    for _ in range(rng.randrange(32, 256)))
    fd = parent.syscall("open", path, O_CREAT | O_RDWR)
    parent.write_bytes(fd, payload)
    parent.syscall("lseek", fd, 0, 0)
    got = parent.read_bytes(fd, len(payload))
    assert got == payload, f"file round-trip corrupted at op {index}"
    parent.syscall("close", fd)
    parent.syscall("unlink", path)


def _op_malloc(parent: Any, rng: random.Random) -> None:
    """Heap churn: allocate, fill, verify, free."""
    cap = parent.malloc(rng.randrange(32, 1024))
    value = rng.randrange(2 ** 32)
    parent.store_u64(cap, value)
    assert parent.load_u64(cap) == value
    parent.free(cap)


def _reap(parent: Any, children: List[Any], engine: ChaosEngine) -> None:
    """Tear down an op's children with injection paused (cleanup is
    bookkeeping, not a chaos target — it must not become a second
    failure)."""
    from repro.errors import SimError

    with engine.paused():
        for child in children:
            try:
                if child.proc.alive:
                    child.exit(0)
                if not child.proc.reaped:
                    parent.wait(child.proc.pid)
            except SimError:
                pass


def format_summary(summary: Dict[str, Any]) -> str:
    """Render a run summary for the CLI."""
    lines = [
        f"chaos run: seed={summary['seed']} "
        f"iterations={summary['iterations']} mix={summary['mix']}",
        f"  ops: " + ", ".join(f"{k}={v}"
                               for k, v in sorted(summary["ops"].items())),
        f"  injected={summary['injected']} "
        f"recovered={summary['recovered']} "
        f"op_failures={sum(summary['op_failures'].values())} "
        f"degrade_tiers={summary['degrade_tiers']}",
        f"  survivors: {summary['alive_processes']} processes, "
        f"{summary['allocated_frames']} frames, "
        f"clock={summary['clock_ns']} ns",
        f"  kernel_state_digest={summary['kernel_state_digest'][:16]}…",
    ]
    if summary["injected_by_point"]:
        lines.append("  fired points:")
        for point, count in summary["injected_by_point"].items():
            lines.append(f"    {point}: {count}")
    return "\n".join(lines)

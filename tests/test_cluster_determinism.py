"""Determinism contract of the cluster layer (docs/CLUSTER.md).

The trace synthesizer must be a pure function of its config (two
same-seed streams byte-equal), the consistent-hash ring must produce
the identical key→shard map across runs, and the full cluster report
must serialize to the same bytes for the same arguments — the property
the CI cluster job's uploaded artifact is diffable by.
"""

from repro.cluster import (
    RECORD,
    ConsistentHashRing,
    TraceConfig,
    remap_fraction_ppm,
    slot_counts,
    synthesize,
    trace_digest,
)

SMALL = TraceConfig(seed=13, requests=3_000, keys=128, users=9_999,
                    slots=24, slot_ns=1_000_000)


class TestTraceDeterminism:
    def test_same_config_byte_equal_streams(self):
        packed_a = b"".join(RECORD.pack(*r) for r in synthesize(SMALL))
        packed_b = b"".join(RECORD.pack(*r) for r in synthesize(SMALL))
        assert packed_a == packed_b
        assert len(packed_a) == RECORD.size * SMALL.requests

    def test_digest_matches_stream_and_pins(self):
        assert trace_digest(SMALL) == trace_digest(SMALL)
        assert trace_digest(SMALL, limit=100) == \
            trace_digest(SMALL.scaled(), limit=100)

    def test_different_seeds_differ(self):
        assert trace_digest(SMALL) != trace_digest(SMALL.scaled(seed=14))

    def test_request_count_exact_at_awkward_sizes(self):
        for requests in (1, 7, 23, 1_000, 3_001):
            cfg = SMALL.scaled(requests=requests)
            assert sum(slot_counts(cfg)) == requests
            assert sum(1 for _ in synthesize(cfg)) == requests

    def test_arrivals_ordered_within_horizon(self):
        arrivals = [r[0] for r in synthesize(SMALL)]
        assert arrivals == sorted(arrivals)
        assert 0 <= arrivals[0] and arrivals[-1] < SMALL.horizon_ns

    def test_record_fields_in_range(self):
        for arrival, user, key, klass in synthesize(SMALL):
            assert 0 <= user < SMALL.users
            assert 0 <= key < SMALL.keys
            assert 0 <= klass < 4


class TestRingDeterminism:
    def test_identical_shard_maps_across_instances(self):
        ring_a = ConsistentHashRing(shards=5, vnodes=32, seed=99)
        ring_b = ConsistentHashRing(shards=5, vnodes=32, seed=99)
        assert ring_a.shard_map(2_048) == ring_b.shard_map(2_048)

    def test_seed_changes_the_ring(self):
        map_a = ConsistentHashRing(shards=5, seed=1).shard_map(2_048)
        map_b = ConsistentHashRing(shards=5, seed=2).shard_map(2_048)
        assert map_a != map_b

    def test_every_shard_gets_keys(self):
        owners = ConsistentHashRing(shards=4, seed=0).shard_map(4_096)
        assert set(owners) == set(range(4))

    def test_growing_the_ring_remaps_a_bounded_fraction(self):
        before = ConsistentHashRing(shards=4, vnodes=64, seed=7)
        after = ConsistentHashRing(shards=5, vnodes=64, seed=7)
        moved = remap_fraction_ppm(before.shard_map(8_192),
                                   after.shard_map(8_192))
        # ideal is 1/5 = 200_000 ppm; a naive mod-N rehash moves ~4/5
        assert 50_000 < moved < 400_000

    def test_surviving_keys_keep_their_owner(self):
        before = ConsistentHashRing(shards=4, vnodes=64, seed=7)
        after = ConsistentHashRing(shards=5, vnodes=64, seed=7)
        for key in range(512):
            if after.shard_of(key) != 4:
                assert after.shard_of(key) == before.shard_of(key)


class TestReportDeterminism:
    def test_same_args_byte_identical_reports(self):
        from repro.cluster import run_cluster
        from repro.harness.reportio import dumps_report

        kwargs = dict(seed=5, shards=2, workers=2, requests=1_500,
                      keys=128, users=4_000, audit=1)
        assert dumps_report(run_cluster(**kwargs)) == \
            dumps_report(run_cluster(**kwargs))

    def test_seed_changes_the_report(self):
        from repro.cluster import run_cluster

        kwargs = dict(shards=2, workers=2, requests=1_500,
                      keys=128, users=4_000, audit=0)
        report_a = run_cluster(seed=5, **kwargs)
        report_b = run_cluster(seed=6, **kwargs)
        assert report_a["trace"]["digest_sha256"] != \
            report_b["trace"]["digest_sha256"]
        assert report_a["latency_ns"] != report_b["latency_ns"]

"""Bounded interleaving explorer for conformance scenarios.

Replays one scenario under systematically permuted scheduler decisions,
asserting the kernel invariants of :mod:`repro.conform.invariants` at
every preemption point of every schedule.

A *schedule* is a sparse map ``{decision_point: choice_index}`` of
deviations from the canonical newest-first policy; every unlisted
point takes choice 0.  Exploration is depth-bounded (at most
``depth_bound`` deviations per schedule) and canonical: a schedule is
only extended at points strictly after its last deviation, so each
deviation set is generated exactly once.  Sleep-set pruning drops a
deviation when the op it would run and the op the canonical choice
would run have disjoint static footprints (:meth:`Scenario.op_footprint`)
— swapping two commuting ops cannot reach a new state, and the swapped
order is reachable via a later deviation anyway.  ``prune=False``
disables it (the soundness property test compares both frontiers).

Budget accounting is exact: ``explore`` *executes* precisely
``min(budget, reachable)`` schedules, counting the canonical run —
never the enqueued-frontier overcount a late-firing prune can cause.

Coverage guidance: a keyed BLAKE2b fingerprint of the kernel state
(process/task liveness, interpreter positions, pipe buffers, fd
refcounts, pending signals, allocated frames) is taken at every
preemption point.  The frontier is a priority heap ordered by
``(depth desc, parent-novelty desc, seeded draw)``: deeper schedules
first — which is what makes depth ≥ 5 reachable inside small budgets —
then extensions of runs that just discovered *new* states, so the
budget is spent where the state space is still growing.

Chaos: with ``chaos_mix`` set, every schedule boots its machine with a
fresh :class:`~repro.chaos.ChaosEngine` seeded from the ``(seed,
scenario, schedule)`` triple — so a filed violation still replays
byte-identically from its ``(seed, schedule)`` pair, injected faults
included.  A fault that escapes the recovery machinery and kills the
scenario is *allowed* (counted as a chaos death, never silently
dropped); invariant violations at any step remain violations.

Determinism: fingerprints, frontier draws and chaos schedules are all
keyed hashes of the seed — the same machinery the chaos engine replays
faults with — so a violation reports the exact ``(seed, schedule)``
pair that reproduces it, byte-identically, on any machine.
"""

from __future__ import annotations

import hashlib
import heapq
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.chaos import ChaosEngine, FaultMix, deterministic_draw
from repro.conform.dsl import Scenario, diff_traces, trace_sha256
from repro.conform.invariants import (
    check_end_state,
    check_invariants,
    frame_baseline,
)
from repro.conform.simrun import (
    ConformError,
    DeadlockError,
    SimRun,
    boot_sim,
)
from repro.errors import SimError
from repro.kernel.signals import signal_state
from repro.machine import Machine

Schedule = Dict[int, int]

#: digest width of one state fingerprint (coverage material, not crypto)
_FP_BYTES = 8


def _schedule_key(schedule: Schedule) -> Tuple[Tuple[int, int], ...]:
    return tuple(sorted(schedule.items()))


def state_fingerprint(os_: Any, run: Any, key: bytes = b"conform.cov"
                      ) -> str:
    """A keyed digest of the observable kernel + interpreter state at
    one preemption point.

    Built only from schedule-deterministic material — labels, program
    counters, liveness, pipe buffer contents, fd refcounts, pending
    signal queues, allocated-frame count — never host identities
    (``id()``, pids of the *host*, wall clock), so the same schedule
    fingerprints identically on any machine.
    """
    parts: List[Any] = []
    for p in run.procs:
        proc = p.ctx.proc
        parts.append((p.label, p.pc, p.blocked, p.done,
                      proc.alive, getattr(proc, "reaped", False),
                      getattr(proc, "exit_status", None),
                      len(run.events.get(p.label, ())),
                      tuple(signal_state(proc).pending)))
    for proc in sorted(os_.procs.all(), key=lambda q: q.pid):
        if proc.fdtable is None:
            continue
        for fd, desc in sorted(proc.fdtable.items()):
            obj = desc.obj
            pipe = getattr(obj, "pipe", None)
            buffered = pipe.buffered if pipe is not None else None
            parts.append((proc.pid, fd, type(obj).__name__,
                          desc.refcount, buffered))
    parts.append(os_.machine.phys.allocated_frames)
    return hashlib.blake2b(repr(parts).encode("utf-8"),
                           digest_size=_FP_BYTES, key=key).hexdigest()


def _chaos_seed(seed: int, scenario_name: str, schedule: Schedule) -> int:
    """A fresh engine seed per (seed, scenario, schedule) triple, so a
    chaos-mode violation replays from its filed pair alone — engine
    state never leaks across schedules."""
    blob = f"{seed}|{scenario_name}|{_schedule_key(schedule)}"
    return int.from_bytes(hashlib.blake2b(blob.encode("utf-8"),
                                          digest_size=8).digest(), "big")


class _Watcher:
    """on_step callback: invariants at every preemption point, stopping
    at the first violation (the kernel state is already broken; later
    checks would only echo it); optionally fingerprints every state."""

    def __init__(self, os_: Any, collect_states: bool) -> None:
        self.os_ = os_
        self.collect_states = collect_states
        self.violations: List[str] = []
        self.states: Set[str] = set()
        self.steps = 0

    def __call__(self, os_: Any, run: Any) -> None:
        self.steps += 1
        if not self.violations:
            self.violations = check_invariants(self.os_)
        if self.collect_states:
            self.states.add(state_fingerprint(self.os_, run))


def _run_schedule(scenario: Scenario, strategy: str, num_cpus: int,
                  seed: int, schedule: Schedule,
                  chaos_mix: Optional[str] = None,
                  collect_states: bool = True
                  ) -> Tuple[Optional[Dict[str, Any]], Dict[str, Any],
                             List[Dict[str, Any]]]:
    """Execute one schedule; returns (trace|None, meta, violations).

    ``meta`` carries the decision-point candidate sets (frontier
    material), the fingerprint set, the live kernel, and — in chaos
    mode — the injected-fault death that ended the run, if any.
    """
    violations: List[Dict[str, Any]] = []
    watcher: Optional[_Watcher] = None
    baseline = None

    machine = Machine(seed=seed, num_cpus=num_cpus)
    engine: Optional[ChaosEngine] = None
    if chaos_mix:
        engine = ChaosEngine(seed=_chaos_seed(seed, scenario.name, schedule),
                             mix=FaultMix.parse(chaos_mix))
        engine.attach(machine)
        with engine.paused():
            machine, os_ = boot_sim(strategy, num_cpus=num_cpus, seed=seed,
                                    machine=machine)
    else:
        machine, os_ = boot_sim(strategy, num_cpus=num_cpus, seed=seed,
                                machine=machine)

    def decision(point: int, offered: List[Tuple[str, Any]]) -> int:
        return schedule.get(point, 0)

    def on_step(os2: Any, run: Any) -> None:
        nonlocal watcher, baseline
        if watcher is None:
            watcher = _Watcher(os2, collect_states)
            baseline = frame_baseline(os2)
        watcher(os2, run)

    def record(kind: str, detail: str) -> None:
        violations.append({
            "kind": kind,
            "detail": detail,
            "seed": seed,
            "schedule": {str(k): v for k, v in sorted(schedule.items())},
        })

    def meta_for(points: List[Any], chaos_death: Optional[str]
                 ) -> Dict[str, Any]:
        return {
            "points": points,
            "states": watcher.states if watcher is not None else set(),
            "os": os_,
            "chaos_death": chaos_death,
        }

    interp = SimRun(os_, scenario, decision=decision, on_step=on_step)
    trace: Optional[Dict[str, Any]] = None
    try:
        trace = interp.run()
    except DeadlockError as exc:
        if engine is not None:
            # an injected WouldBlock can wedge a schedule; that is the
            # fault model working, not a kernel bug — report it as a
            # chaos death, never silently
            if watcher is not None and watcher.violations:
                for detail in watcher.violations:
                    record("invariant", detail)
            return None, meta_for(interp.points, f"deadlock: {exc}"), \
                violations
        record("deadlock", str(exc))
        return None, meta_for([], None), violations
    except ConformError as exc:
        if engine is not None:
            # e.g. an injected fork failure makes a later wait reference
            # a child that never existed — scenario logic broken *by*
            # the fault model, not by the kernel
            if watcher is not None and watcher.violations:
                for detail in watcher.violations:
                    record("invariant", detail)
            return None, meta_for(interp.points, f"scenario-error: {exc}"), \
                violations
        record("scenario-error", str(exc))
        return None, meta_for([], None), violations
    except SimError as exc:
        if engine is None:
            raise
        # a fault escaped the recovery machinery and killed the
        # scenario mid-flight — allowed under chaos; the watcher's
        # per-step invariant checks above still had to pass
        if watcher is not None and watcher.violations:
            for detail in watcher.violations:
                record("invariant", detail)
        return None, meta_for(interp.points,
                              f"{type(exc).__name__}: {exc}"), violations

    if watcher is not None and watcher.violations:
        for detail in watcher.violations:
            record("invariant", detail)
    for detail in check_invariants(os_):
        record("invariant", f"end: {detail}")
    if baseline is not None:
        # every scenario process has exited by now; memory must be
        # back to the (post-boot, pre-fork) baseline captured at the
        # first preemption point
        for detail in check_end_state(os_, baseline):
            record("leak", detail)
    return trace, meta_for(interp.points, None), violations


def explore(scenario: Scenario, strategy: str = "copa", num_cpus: int = 2,
            seed: int = 0, depth_bound: int = 3, budget: int = 600,
            prune: bool = True, coverage: bool = True,
            chaos_mix: Optional[str] = None) -> Dict[str, Any]:
    """Explore up to ``budget`` distinct schedules of one scenario.

    Returns a JSON-ready summary: schedules run (exactly
    ``min(budget, reachable)``), prunes, the deepest deviation count
    reached, unique kernel-state fingerprints, the sorted set of
    end-state trace digests, chaos deaths, and every violation found —
    each with the (seed, schedule) pair that replays it.
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1 (the canonical schedule "
                         f"always runs), got {budget}")
    result: Dict[str, Any] = {
        "scenario": scenario.name,
        "strategy": strategy,
        "num_cpus": num_cpus,
        "seed": seed,
        "depth_bound": depth_bound,
        "budget": budget,
        "chaos": bool(chaos_mix),
        "schedules": 0,
        "pruned": 0,
        "max_depth": 0,
        "chaos_deaths": 0,
        "violations": [],
    }

    seen_states: Set[str] = set()
    trace_digests: Set[str] = set()

    def run_one(schedule: Schedule
                ) -> Tuple[Optional[Dict[str, Any]], Dict[str, Any], int]:
        trace, meta, violations = _run_schedule(
            scenario, strategy, num_cpus, seed, schedule,
            chaos_mix=chaos_mix, collect_states=coverage)
        result["schedules"] += 1
        result["max_depth"] = max(result["max_depth"], len(schedule))
        result["violations"].extend(violations)
        if meta["chaos_death"] is not None:
            result["chaos_deaths"] += 1
        if trace is not None:
            trace_digests.add(trace_sha256(trace))
        novelty = 0
        if coverage:
            novelty = len(meta["states"] - seen_states)
            seen_states.update(meta["states"])
        return trace, meta, novelty

    base_trace, base_meta, base_novelty = run_one({})
    result["decision_points"] = len(base_meta["points"])

    seen = {_schedule_key({})}
    #: ((depth desc, novelty desc, draw), tiebreak, schedule)
    frontier: List[Tuple[Tuple[int, int, float], int, Schedule]] = []
    counter = 0

    def push_extensions(schedule: Schedule, points: List[Any],
                        novelty: int) -> None:
        nonlocal counter
        if len(schedule) >= depth_bound:
            return
        last = max(schedule) if schedule else -1
        for index in range(last + 1, len(points)):
            offered = points[index]
            canonical_op = offered[0][1]
            for choice in range(1, len(offered)):
                if prune and scenario.ops_independent(offered[choice][1],
                                                      canonical_op):
                    # commuting ops: the swapped order is reachable via
                    # a later deviation; skip this branch entirely
                    result["pruned"] += 1
                    continue
                extended = dict(schedule)
                extended[index] = choice
                key = _schedule_key(extended)
                if key in seen:
                    continue
                seen.add(key)
                counter += 1
                draw = deterministic_draw(
                    seed, f"conform.explore.{scenario.name}", counter)
                priority = (-len(extended), -novelty, draw)
                heapq.heappush(frontier, (priority, counter, extended))

    push_extensions({}, base_meta["points"], base_novelty)

    while frontier and result["schedules"] < budget:
        _prio, _tie, schedule = heapq.heappop(frontier)
        trace, meta, novelty = run_one(schedule)
        if trace is not None and scenario.schedule_invariant \
                and base_trace is not None and not chaos_mix:
            diffs = diff_traces(trace, base_trace)
            if diffs:
                result["violations"].append({
                    "kind": "schedule-divergence",
                    "detail": "; ".join(diffs[:5]),
                    "seed": seed,
                    "schedule": {str(k): v
                                 for k, v in sorted(schedule.items())},
                })
        push_extensions(schedule, meta["points"], novelty)

    result["frontier_left"] = len(frontier)
    result["unique_states"] = len(seen_states)
    result["trace_set"] = sorted(trace_digests)
    return result

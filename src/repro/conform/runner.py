"""Drive the full conformance run and emit the ``repro.conform/v1``
report.

``python -m repro.harness conform`` lands here.  One run is:

1. **Differential matrix** — every corpus scenario executes on the
   simulated kernel for each (strategy × CPU-count) cell and its trace
   is diffed against the reference: the real host kernel's trace when
   the host oracle is enabled, else the first cell (pure-sim
   cross-strategy agreement, used for the committed golden report so it
   stays host-independent).  The matrix runs under an ``repro.obs``
   session; the merged metrics export becomes the ``.obs.json``
   sidecar.
2. **Interleaving exploration** — each scenario is replayed under up to
   ``budget`` permuted schedules at ``depth_bound`` deviations
   (:mod:`repro.conform.explorer`), kernel invariants checked at every
   preemption point.  Violations carry their (seed, schedule) repro.

Everything in the report is deterministic from the seed (and, for host
verdicts, the host kernel's POSIX behaviour): running twice with the
same arguments produces byte-identical JSON — the golden-report test
relies on it.
"""

from __future__ import annotations

import hashlib
import json
import os as _os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.conform import SCHEMA
from repro.conform.dsl import Scenario, diff_traces, trace_sha256
from repro.conform.explorer import explore
from repro.conform.scenarios import corpus
from repro.conform.simrun import STRATEGIES, ConformError, run_sim

DEFAULT_CPUS = (1, 2, 4)
#: strategy/CPU pair the explorer permutes schedules on (one cell —
#: the schedule space, not the strategy, is what exploration varies)
EXPLORE_STRATEGY = "copa"
EXPLORE_CPUS = 2


def _matrix_cell(scenario: Scenario, strategy: str, cpus: int, seed: int,
                 reference: Optional[Dict[str, Any]]
                 ) -> Tuple[Dict[str, Any], Optional[Dict[str, Any]]]:
    try:
        trace, meta = run_sim(scenario, strategy=strategy, num_cpus=cpus,
                              seed=seed)
    except ConformError as exc:
        return {"verdict": "error", "detail": str(exc)}, None
    cell: Dict[str, Any] = {
        "trace_sha256": trace_sha256(trace),
        "syscalls": sum(meta["syscalls"].values()),
        "decision_points": meta["decision_points"],
    }
    if reference is None:
        cell["verdict"] = "reference"
    else:
        diffs = diff_traces(trace, reference)
        cell["verdict"] = "ok" if not diffs else "diff"
        if diffs:
            cell["diffs"] = diffs[:10]
    return cell, trace


def run_conform(seed: int = 7,
                cpus: Sequence[int] = DEFAULT_CPUS,
                strategies: Sequence[str] = STRATEGIES,
                depth_bound: int = 3,
                budget: int = 600,
                scenario_names: Optional[Sequence[str]] = None,
                host: bool = True,
                obs_dir: Optional[str] = None) -> Dict[str, Any]:
    """Run the conformance suite; returns the JSON-ready report.

    With ``obs_dir`` set, writes ``conform-<seed>.conform.json`` (this
    report) and ``conform-<seed>.obs.json`` (the metrics sidecar).
    """
    from repro.obs import obs_session, to_json, write_export

    scenarios = corpus()
    if scenario_names:
        # explicit selection may reach the sim-only corpora (snapshot,
        # capability probes) — those have no host equivalent, so they
        # are only runnable with the host oracle off
        from repro.conform.scenarios import sec_corpus, snapshot_corpus
        sim_only = {s.name for s in snapshot_corpus() + sec_corpus()}
        wanted = set(scenario_names)
        pool = corpus() + snapshot_corpus() + sec_corpus()
        scenarios = [s for s in pool if s.name in wanted]
        missing = wanted - {s.name for s in scenarios}
        if missing:
            raise KeyError(f"unknown scenario(s): {sorted(missing)}")
        chosen_sim_only = sorted(wanted & sim_only)
        if host and chosen_sim_only:
            raise ValueError(
                f"sim-only scenario(s) {chosen_sim_only} have no host "
                f"equivalent; run them with host=False (--no-host)")

    report: Dict[str, Any] = {
        "schema": SCHEMA,
        "seed": seed,
        "cpus": list(cpus),
        "strategies": list(strategies),
        "depth_bound": depth_bound,
        "budget": budget,
        "host_oracle": bool(host),
        "scenarios": {},
    }
    totals = {"cells": 0, "diffs": 0, "errors": 0, "schedules": 0,
              "pruned": 0, "violations": 0}

    host_traces: Dict[str, Dict[str, Any]] = {}
    if host:
        from repro.conform.host import run_host
        for scenario in scenarios:
            host_traces[scenario.name] = run_host(scenario)

    with obs_session() as session:
        for scenario in scenarios:
            entry: Dict[str, Any] = {"matrix": {}}
            reference = host_traces.get(scenario.name)
            if reference is not None:
                entry["host_trace_sha256"] = trace_sha256(reference)
            for strategy in strategies:
                for n in cpus:
                    cell, trace = _matrix_cell(scenario, strategy, n,
                                               seed, reference)
                    totals["cells"] += 1
                    if cell["verdict"] == "diff":
                        totals["diffs"] += 1
                    elif cell["verdict"] == "error":
                        totals["errors"] += 1
                    if reference is None and trace is not None:
                        # host oracle off: the first cell becomes the
                        # cross-strategy reference
                        reference = trace
                        entry["reference_cell"] = f"{strategy}-c{n}"
                    entry["matrix"][f"{strategy}-c{n}"] = cell
            report["scenarios"][scenario.name] = entry

    # exploration happens outside the obs session: it boots hundreds of
    # throwaway machines whose metrics would drown the sidecar
    for scenario in scenarios:
        result = explore(scenario, strategy=EXPLORE_STRATEGY,
                         num_cpus=EXPLORE_CPUS, seed=seed,
                         depth_bound=depth_bound, budget=budget)
        totals["schedules"] += result["schedules"]
        totals["pruned"] += result["pruned"]
        totals["violations"] += len(result["violations"])
        report["scenarios"][scenario.name]["explorer"] = {
            "schedules": result["schedules"],
            "pruned": result["pruned"],
            "decision_points": result["decision_points"],
            "frontier_left": result["frontier_left"],
            "violations": result["violations"],
        }

    report["totals"] = totals
    report["verdict"] = (
        "conformant" if not (totals["diffs"] or totals["errors"]
                             or totals["violations"]) else "violations")
    export = session.export()
    report["obs_export_sha256"] = hashlib.sha256(
        to_json(export).encode("utf-8")).hexdigest()

    if obs_dir is not None:
        _os.makedirs(obs_dir, exist_ok=True)
        write_export(export, _os.path.join(
            obs_dir, f"conform-{seed}.obs.json"))
        from repro.harness.reportio import write_report
        write_report(report, _os.path.join(
            obs_dir, f"conform-{seed}.conform.json"))
    return report


def format_summary(report: Dict[str, Any]) -> str:
    """Render a conformance report for the CLI."""
    totals = report["totals"]
    lines = [
        f"conformance run: seed={report['seed']} "
        f"strategies={','.join(report['strategies'])} "
        f"cpus={','.join(str(n) for n in report['cpus'])} "
        f"host_oracle={'on' if report['host_oracle'] else 'off'}",
        f"  scenarios={len(report['scenarios'])} "
        f"matrix_cells={totals['cells']} "
        f"diffs={totals['diffs']} errors={totals['errors']}",
        f"  explorer: schedules={totals['schedules']} "
        f"pruned={totals['pruned']} "
        f"(depth_bound={report['depth_bound']}, "
        f"budget={report['budget']}/scenario) "
        f"violations={totals['violations']}",
        f"  verdict: {report['verdict']}",
    ]
    bad: List[str] = []
    for name, entry in sorted(report["scenarios"].items()):
        for cell_name, cell in sorted(entry["matrix"].items()):
            if cell["verdict"] in ("diff", "error"):
                detail = (cell.get("diffs") or [cell.get("detail", "?")])[0]
                bad.append(f"    {name} [{cell_name}]: {detail}")
        for violation in entry.get("explorer", {}).get("violations", []):
            bad.append(f"    {name} [explorer {violation['kind']}]: "
                       f"{violation['detail']} "
                       f"(seed={violation['seed']}, "
                       f"schedule={violation['schedule']})")
    if bad:
        lines.append("  failures:")
        lines.extend(bad[:20])
        if len(bad) > 20:
            lines.append(f"    ... and {len(bad) - 20} more")
    return "\n".join(lines)

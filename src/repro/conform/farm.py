"""The parallel differential exploration farm.

``python -m repro.harness conform-farm`` lands here.  The bounded
interleaving explorer (:mod:`repro.conform.explorer`) is fanned out
across real OS worker processes: the full work matrix — every scenario
× fork strategy × CPU count — is split into per-worker shards, each
worker runs in its own session/process group under a hard wall-clock
deadline (:mod:`repro.conform.isolated`, the promoted pytest-isolated
machinery), and the per-unit results are merged into one byte-stable
``repro.conform/v1`` farm report.

Crash safety is per *unit of work*: a worker appends one canonical
JSON line per completed (scenario, strategy, cpus) unit to its result
file and fsyncs it before starting the next, so a SIGKILL — ours, on
deadline overrun, or anyone else's — loses only the in-flight unit and
whatever the dead worker had not started.  The coordinator diffs each
worker's completed units against its assigned shard and files the
difference under ``lost`` with the worker's crash reason; coverage
loss is *reported*, never silent, and the report verdict degrades to
``incomplete``.

Determinism: units are assigned round-robin over the deterministically
ordered matrix (no work stealing), every unit is explored from the
farm seed alone, and the merge sorts by unit key — so two runs with
the same arguments produce byte-identical reports, regardless of how
the OS interleaves the workers.  That is what makes the farm report a
diffable CI artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.conform import SCHEMA

#: the farm's default coverage domain: every strategy at 1/2/4/8 CPUs,
#: explored to depth >= 5 (the single-process explorer stopped at 3)
DEFAULT_CPUS = (1, 2, 4, 8)
DEFAULT_DEPTH = 5
DEFAULT_BUDGET = 12
DEFAULT_WORKERS = 4
#: per-worker wall-clock deadline before the group is SIGKILLed
DEFAULT_TIMEOUT = 900.0
#: the --chaos injection rates: low enough that most schedules complete,
#: high enough that fork aborts and EINTR storms are routinely exercised
DEFAULT_CHAOS_MIX = ("default=0.0,core.ufork.abort.*=0.05,"
                     "core.snapshot.abort.*=0.05,"
                     "kernel.syscall.eintr=0.03")

#: result-file keys copied from each explorer result into the report
#: (trace_set stays worker-local: digests would bloat the artifact)
UNIT_KEYS = ("schedules", "pruned", "decision_points", "frontier_left",
             "max_depth", "unique_states", "chaos_deaths", "violations")

Unit = Dict[str, Any]


def unit_key(unit: Unit) -> str:
    return f"{unit['scenario']}|{unit['strategy']}-c{unit['cpus']}"


def plan_units(scenario_names: Optional[Sequence[str]] = None,
               strategies: Optional[Sequence[str]] = None,
               cpus: Sequence[int] = DEFAULT_CPUS) -> List[Unit]:
    """The deterministic work matrix, in corpus × strategy × cpu order.

    The farm covers the host-differential corpus *plus* the sim-only
    snapshot and security corpora — the explorer needs no host oracle,
    so checkpoint/restore interleavings, capability probes (and, under
    ``--chaos``, injected mid-restore aborts) are fair game here.
    """
    from repro.conform.scenarios import corpus, sec_corpus, snapshot_corpus
    from repro.conform.simrun import STRATEGIES

    strategies = tuple(strategies or STRATEGIES)
    for strategy in strategies:
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; "
                             f"choose from {STRATEGIES}")
    scenarios = corpus() + snapshot_corpus() + sec_corpus()
    if scenario_names:
        wanted = set(scenario_names)
        scenarios = [s for s in scenarios if s.name in wanted]
        missing = wanted - {s.name for s in scenarios}
        if missing:
            raise KeyError(f"unknown scenario(s): {sorted(missing)}")
    return [{"scenario": scenario.name, "strategy": strategy,
             "cpus": int(n)}
            for scenario in scenarios
            for strategy in strategies
            for n in cpus]


def shard_units(units: Sequence[Unit], workers: int) -> List[List[Unit]]:
    """Static round-robin assignment — no stealing, so the shard map
    (and with it the merged report) is a pure function of the inputs."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return [list(units[index::workers]) for index in range(workers)]


# ---------------------------------------------------------------------------
# Worker side (runs inside `python -m repro.conform.farm --worker`)
# ---------------------------------------------------------------------------

def run_worker(spec_path: str, out_path: str) -> int:
    """Execute one shard, appending a canonical JSON line per finished
    unit.  flush + fsync per line is the crash-safety contract: a kill
    at any instant leaves a valid prefix of complete lines."""
    from repro.conform.explorer import explore
    from repro.conform.scenarios import by_name

    with open(spec_path, "r", encoding="utf-8") as handle:
        spec = json.load(handle)
    with open(out_path, "w", encoding="utf-8") as out:
        for unit in spec["units"]:
            result = explore(by_name(unit["scenario"]),
                             strategy=unit["strategy"],
                             num_cpus=unit["cpus"],
                             seed=spec["seed"],
                             depth_bound=spec["depth_bound"],
                             budget=spec["budget"],
                             chaos_mix=spec["chaos_mix"])
            record = {"unit": unit_key(unit),
                      "result": {key: result[key] for key in UNIT_KEYS}}
            out.write(json.dumps(record, sort_keys=True,
                                 separators=(",", ":")) + "\n")
            out.flush()
            os.fsync(out.fileno())
    return 0


def _parse_result_lines(path: str) -> List[Dict[str, Any]]:
    """Complete JSON lines from a (possibly truncated) worker file; a
    torn final line is exactly the in-flight unit a kill lost."""
    records: List[Dict[str, Any]] = []
    if not os.path.exists(path):
        return records
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if not line.endswith("\n"):
                break  # torn write: the kill landed mid-line
            try:
                records.append(json.loads(line))
            except ValueError:
                break
    return records


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------

def run_farm(seed: int = 0,
             workers: int = DEFAULT_WORKERS,
             depth_bound: int = DEFAULT_DEPTH,
             budget: int = DEFAULT_BUDGET,
             chaos: bool = False,
             chaos_mix: Optional[str] = None,
             scenario_names: Optional[Sequence[str]] = None,
             strategies: Optional[Sequence[str]] = None,
             cpus: Sequence[int] = DEFAULT_CPUS,
             timeout: float = DEFAULT_TIMEOUT,
             work_dir: Optional[str] = None) -> Dict[str, Any]:
    """Fan the explorer out over ``workers`` OS processes; return the
    merged, byte-stable ``repro.conform/v1`` farm report.

    ``work_dir`` keeps the per-worker spec/result files (CI artifact
    material); by default they live in a temp dir that is removed once
    merged.
    """
    from repro.conform.isolated import IsolatedProcess
    from repro.conform.simrun import STRATEGIES

    strategies = tuple(strategies or STRATEGIES)
    mix = (chaos_mix or DEFAULT_CHAOS_MIX) if (chaos or chaos_mix) else None
    units = plan_units(scenario_names=scenario_names,
                       strategies=strategies, cpus=cpus)
    shards = shard_units(units, workers)

    directory = work_dir or tempfile.mkdtemp(prefix="conform-farm-")
    os.makedirs(directory, exist_ok=True)
    launched: List[Tuple[int, List[Unit], str, IsolatedProcess]] = []
    try:
        for index, shard in enumerate(shards):
            if not shard:
                continue
            spec_path = os.path.join(directory, f"worker-{index}.spec.json")
            out_path = os.path.join(directory, f"worker-{index}.jsonl")
            with open(spec_path, "w", encoding="utf-8") as handle:
                json.dump({"seed": seed, "depth_bound": depth_bound,
                           "budget": budget, "chaos_mix": mix,
                           "units": shard}, handle, sort_keys=True)
            proc = IsolatedProcess(
                argv=[sys.executable, "-m", "repro.conform.farm",
                      "--worker", spec_path, out_path],
                timeout=timeout)
            launched.append((index, shard, out_path, proc))

        completed: Dict[str, Dict[str, Any]] = {}
        lost: List[Dict[str, Any]] = []
        for index, shard, out_path, proc in launched:
            outcome = proc.wait()
            for record in _parse_result_lines(out_path):
                completed[record["unit"]] = dict(record["result"],
                                                 worker=index)
            missing = [unit_key(unit) for unit in shard
                       if unit_key(unit) not in completed]
            if missing or outcome.returncode != 0 or outcome.timed_out:
                lost.append({
                    "worker": index,
                    "reason": outcome.crash_reason,
                    "units": missing,
                    "stderr_tail": outcome.stderr[-400:],
                })
    finally:
        for _index, _shard, _out, proc in launched:
            if proc.proc.poll() is None:  # only on an early exit
                proc.kill_group()
                proc.proc.wait()
        if work_dir is None:
            shutil.rmtree(directory, ignore_errors=True)

    totals = {"units": len(units), "completed": len(completed),
              "lost": sum(len(entry["units"]) for entry in lost),
              "schedules": 0, "pruned": 0, "violations": 0,
              "chaos_deaths": 0, "unique_states": 0, "max_depth": 0}
    for entry in completed.values():
        totals["schedules"] += entry["schedules"]
        totals["pruned"] += entry["pruned"]
        totals["violations"] += len(entry["violations"])
        totals["chaos_deaths"] += entry["chaos_deaths"]
        totals["unique_states"] += entry["unique_states"]
        totals["max_depth"] = max(totals["max_depth"], entry["max_depth"])

    if totals["violations"]:
        verdict = "violations"
    elif lost:
        verdict = "incomplete"
    else:
        verdict = "conformant"
    return {
        "schema": SCHEMA,
        "kind": "farm",
        "seed": seed,
        "workers": workers,
        "depth_bound": depth_bound,
        "budget": budget,
        "chaos": bool(mix),
        "chaos_mix": mix or "",
        "strategies": list(strategies),
        "cpus": [int(n) for n in cpus],
        "units": {key: completed[key] for key in sorted(completed)},
        "lost": lost,
        "totals": totals,
        "verdict": verdict,
    }


def format_farm_summary(report: Dict[str, Any]) -> str:
    """Render a farm report for the CLI."""
    totals = report["totals"]
    lines = [
        f"exploration farm: seed={report['seed']} "
        f"workers={report['workers']} "
        f"depth_bound={report['depth_bound']} "
        f"budget={report['budget']}/unit "
        f"chaos={'on' if report['chaos'] else 'off'}",
        f"  matrix: scenarios x {','.join(report['strategies'])} x "
        f"cpus {','.join(str(n) for n in report['cpus'])} = "
        f"{totals['units']} units "
        f"(completed={totals['completed']} lost={totals['lost']})",
        f"  explored: schedules={totals['schedules']} "
        f"pruned={totals['pruned']} "
        f"max_depth={totals['max_depth']} "
        f"unique_states={totals['unique_states']} "
        f"chaos_deaths={totals['chaos_deaths']}",
        f"  verdict: {report['verdict']}",
    ]
    bad: List[str] = []
    for key, entry in report["units"].items():
        for violation in entry["violations"]:
            bad.append(f"    {key} [{violation['kind']}]: "
                       f"{violation['detail']} "
                       f"(seed={violation['seed']}, "
                       f"schedule={violation['schedule']})")
    for entry in report["lost"]:
        bad.append(f"    worker {entry['worker']} {entry['reason']}: "
                   f"lost {len(entry['units'])} unit(s) "
                   f"{entry['units'][:4]}")
    if bad:
        lines.append("  failures:")
        lines.extend(bad[:20])
        if len(bad) > 20:
            lines.append(f"    ... and {len(bad) - 20} more")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Worker entry point only — the coordinator is :func:`run_farm`
    (reached via ``python -m repro.harness conform-farm``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.conform.farm",
        description="exploration-farm worker (internal; use "
                    "`python -m repro.harness conform-farm`)")
    parser.add_argument("--worker", nargs=2, required=True,
                        metavar=("SPEC", "OUT"),
                        help="run one shard: spec JSON in, JSONL out")
    args = parser.parse_args(argv)
    return run_worker(args.worker[0], args.worker[1])


if __name__ == "__main__":
    sys.exit(main())

"""The snapshot demo runner behind ``python -m repro.harness snapshot``.

Checkpoints a warmed-up μprocess on a donor machine, restores the blob
into a *freshly booted* machine, and replays the same logical program
on both — the restored run must trace identically to the uninterrupted
one (the acceptance bar of docs/SNAPSHOT.md).  With ``--incremental``
the donor forks first and the blob carries only the child's
CoW-divergent pages, applied onto a fork twin via
:func:`repro.snapshot.restore_into` — the cluster-migration payload.

Everything is a pure function of ``seed``: the blob is byte-identical
across same-seed runs (its sha256 is part of the summary), so the
``*.snapshot.json`` sidecar is golden-comparable.

This module imports the full OS stack, so it is *not* re-exported from
:mod:`repro.snapshot` (whose core the kernel-facing tests import).
"""

from __future__ import annotations

import hashlib
import os as _os
from typing import Any, Dict, List, Optional, Tuple

from repro.snapshot.format import SCHEMA, decode

#: schema tag for the summary dict / ``*.snapshot.json`` sidecar
RUN_SCHEMA = "repro.snapshot.run/v1"

#: fork strategies the demo accepts (three SASOS + the CheriBSD baseline)
STRATEGIES = ("full", "coa", "copa", "monolithic")


def _boot(strategy: str, seed: int, cpus: int):
    from repro.apps.guest import GuestContext
    from repro.apps.hello import hello_world_image
    from repro.machine import Machine

    machine = Machine(seed=seed, num_cpus=cpus)
    machine.obs.enable()
    if strategy == "monolithic":
        from repro.baselines.monolithic import MonolithicOS
        os_ = MonolithicOS(machine=machine)
    else:
        from repro.core import CopyStrategy, UForkOS
        os_ = UForkOS(machine=machine,
                      copy_strategy=CopyStrategy(strategy))
    ctx = GuestContext(os_, os_.spawn(hello_world_image(), "snapdemo"))
    return os_, ctx


def _warm(ctx) -> None:
    """State worth snapshotting: heap bytes, a stored capability, a
    register-parked capability, a buffered pipe, a signal disposition."""
    from repro.kernel import signals

    cap = ctx.malloc(256)
    ctx.store(cap, b"snapshot demo state " + bytes(range(12)))
    ctx.store_cap(cap, cap.add(64), offset=96)
    ctx.set_reg("c19", cap)
    rfd, wfd = ctx.syscall("pipe")
    ctx.set_reg("x20", rfd)
    ctx.set_reg("x21", wfd)
    ctx.write_bytes(wfd, b"in-flight bytes")
    ctx.syscall("signal", signals.SIGUSR1, signals.SIG_IGN)


def _replay(ctx) -> List[Tuple[Any, ...]]:
    """The post-checkpoint program; records a purely *logical* trace
    (data bytes, capability geometry deltas, statuses — no addresses)."""
    trace: List[Tuple[Any, ...]] = []
    cap = ctx.reg("c19")
    trace.append(("heap", ctx.load(cap, 32)))
    inner = ctx.load_cap(cap, offset=96)
    trace.append(("inner", inner.offset, inner.length, inner.valid,
                  inner.cursor - cap.cursor))
    rfd = ctx.reg("x20")
    got = ctx.syscall("read", rfd, cap.add(128), 15)
    trace.append(("pipe", got, ctx.load(cap, got, offset=128)))
    child = ctx.fork()
    ccap = child.reg("c19")
    trace.append(("child_heap", child.load(ccap, 32)))
    child.exit(0)
    _pid, status = ctx.wait(child.proc.pid)
    trace.append(("wait", status))
    ctx.exit(0)
    return trace


def run_snapshot(seed: int = 7, cpus: int = 1, strategy: str = "copa",
                 incremental: bool = False,
                 obs_dir: Optional[str] = None) -> Dict[str, Any]:
    """Run the checkpoint/restore demo; returns the JSON-ready summary.

    With ``obs_dir`` set, writes two sidecars there:
    ``snapshot-<seed>.obs.json`` (the target machine's ``repro.obs/v1``
    export) and ``snapshot-<seed>.snapshot.json`` (the decoded
    ``repro.snapshot/v1`` manifest plus this summary).
    """
    from repro.apps.guest import GuestContext
    from repro.obs import to_json, write_export
    from repro.snapshot import checkpoint, restore, restore_into

    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {STRATEGIES}")

    # the uninterrupted twin fixes the expected logical trace
    _os_t, twin = _boot(strategy, seed, cpus)
    _warm(twin)
    if incremental:
        twin_child = twin.fork()
        twin_child.store(twin_child.reg("c19"), b"diverged payload")
        expected = _replay(twin_child)
        twin.exit(0)
    else:
        expected = _replay(twin)

    # donor: same seed, checkpoint at the same syscall boundary
    os_a, donor = _boot(strategy, seed, cpus)
    _warm(donor)
    if incremental:
        worker = donor.fork()
        worker.store(worker.reg("c19"), b"diverged payload")
        blob = checkpoint(os_a, worker.proc, incremental=True)
        worker.exit(0)
        donor.wait(worker.proc.pid)
    else:
        blob = checkpoint(os_a, donor.proc)
    manifest, _payload = decode(blob)
    donor_ns = os_a.machine.clock.now_ns
    donor.exit(0)

    # target: a fresh machine (different seed — restore is seed-proof)
    os_b, resident = _boot(strategy, seed + 1, cpus)
    if incremental:
        _warm(resident)
        target = resident.fork()
        applied = restore_into(os_b, target.proc, blob)
        actual = _replay(target)
        resident.exit(0)
    else:
        applied = len(manifest["pages"])
        target = GuestContext(os_b, restore(os_b, blob))
        actual = _replay(target)
        resident.exit(0)

    export = os_b.machine.obs.export()
    buckets = dict(os_b.machine.clock.buckets)
    summary = {
        "schema": RUN_SCHEMA,
        "seed": seed,
        "cpus": cpus,
        "strategy": strategy,
        "incremental": incremental,
        "blob_bytes": len(blob),
        "blob_sha256": hashlib.sha256(blob).hexdigest(),
        "pages": len(manifest["pages"]),
        "pages_applied": applied,
        "tagged_granules": sum(len(p["caps"])
                               for p in manifest["pages"]),
        "registers": len(manifest["registers"]),
        "dropped_fds": sum(1 for entry in manifest["fds"]
                           if entry[1] == "dropped"),
        "donor_clock_ns": donor_ns,
        "restore_clock_ns": os_b.machine.clock.now_ns,
        "restore_buckets": {name: ns for name, ns in sorted(buckets.items())
                            if name.startswith(("restore", "reloc",
                                                "fd_dup"))},
        "trace_events": len(actual),
        "verdict": ("identical" if actual == expected
                    else "DIVERGED"),
        "obs_export_sha256": hashlib.sha256(
            to_json(export).encode("utf-8")).hexdigest(),
    }
    if obs_dir is not None:
        _os.makedirs(obs_dir, exist_ok=True)
        write_export(export, _os.path.join(
            obs_dir, f"snapshot-{seed}.obs.json"))
        from repro.harness.reportio import write_report
        sidecar = {"schema": SCHEMA, "manifest": manifest, "run": summary}
        write_report(sidecar, _os.path.join(
            obs_dir, f"snapshot-{seed}.snapshot.json"))
    return summary


def format_summary(summary: Dict[str, Any]) -> str:
    """Render a run summary for the CLI."""
    kind = "incremental" if summary["incremental"] else "full"
    lines = [
        f"snapshot run: seed={summary['seed']} "
        f"strategy={summary['strategy']} cpus={summary['cpus']} "
        f"mode={kind}",
        f"  blob: {summary['blob_bytes']} bytes, "
        f"{summary['pages']} pages, "
        f"{summary['tagged_granules']} tagged granules, "
        f"{summary['registers']} registers, "
        f"{summary['dropped_fds']} fds dropped by policy",
        f"  restore: {summary['pages_applied']} pages applied, "
        f"clock={summary['restore_clock_ns']} ns",
        f"  blob_sha256={summary['blob_sha256'][:16]}…",
        f"  verdict: {summary['verdict']} "
        f"({summary['trace_events']} logical trace events)",
    ]
    return "\n".join(lines)

#!/usr/bin/env python3
"""Multi-core fork: per-CPU run queues, work stealing, shootdown IPIs.

Boots the same machine with 1, 2 and 4 online CPUs — through the
stable `repro.api.Session` facade (`cpus=N`) — and drives the zygote
FaaS workload (Fig 6) across them, then demonstrates the §2.2
lightweightness argument directly: classic fork must broadcast TLB
shootdowns to every other online CPU, while μFork consults the
μprocess's CPU footprint and sends none for a single-threaded parent.

Run:  python examples/smp_workers.py
"""

from repro.api import Session
from repro.apps.faas import ZygoteRuntime, faas_image
from repro.smp.exec import SmpExecutor
from repro.smp.runner import format_summary, run_smp


def faas_throughput(cpus: int, requests: int = 64) -> dict:
    """Per-CPU workers forking the warm zygote, via the facade."""
    session = Session(os="ufork", cpus=cpus, seed=7).boot()
    zygote = session.spawn(faas_image(), name="zygote")
    runtime = ZygoteRuntime(zygote)
    runtime.warm()

    ex = SmpExecutor(session.os)
    remaining = [requests]
    completed = [0]

    def make_worker(worker_task):
        def step():
            if remaining[0] <= 0:
                return None
            remaining[0] -= 1
            result = runtime.handle_request()
            assert result.ok
            completed[0] += 1
            ex.submit(worker_task, step)
            return None
        return step

    zygote_regs = zygote.proc.main_task().registers
    for _ in range(cpus):
        worker = zygote.proc.add_task()
        worker.registers.copy_from(zygote_regs)
        ex.submit(worker, make_worker(worker))
    makespan = ex.run()
    return {
        "throughput_rps": completed[0] / (makespan / 1e9),
        "steals": session.machine.counters.get("work_steal"),
        "ipis": session.machine.ipi.sent,
    }


def fork_ipis(os_name: str, cpus: int, cycles: int = 16) -> dict:
    """Back-to-back fork/exit cycles from a single-threaded parent."""
    session = Session(os=os_name, cpus=cpus, seed=7).boot()
    ctx = session.spawn(name=os_name)
    before = session.machine.clock.now_ns
    for _ in range(cycles):
        child = ctx.fork()
        child.exit(0)
        ctx.wait(child.pid)
    elapsed = session.machine.clock.now_ns - before
    return {
        "per_fork_ns": elapsed / cycles,
        "shootdown_ipis": session.machine.counters.get(
            "tlb_shootdown_ipis"),
    }


def main() -> None:
    print("FaaS zygote throughput vs online CPUs (64 requests):\n")
    base = None
    for cpus in (1, 2, 4):
        stats = faas_throughput(cpus)
        if base is None:
            base = stats["throughput_rps"]
        speedup = stats["throughput_rps"] / base
        print(f"  {cpus} CPU(s): {stats['throughput_rps']:8.0f} req/s "
              f"({speedup:.2f}x)  steals={stats['steals']} "
              f"ipis={stats['ipis']}")

    print("\nWhy fork's gap widens with cores (§2.2) — shootdown IPIs "
          "per 16 fork/exit cycles from a single-threaded parent:\n")
    for cpus in (1, 2, 4, 8):
        ufork = fork_ipis("ufork", cpus)
        mono = fork_ipis("monolithic", cpus)
        print(f"  {cpus} CPU(s): "
              f"ufork {ufork['shootdown_ipis']:3d} IPIs "
              f"({ufork['per_fork_ns'] / 1e3:6.1f} us/fork)   "
              f"monolithic {mono['shootdown_ipis']:3d} "
              f"IPIs ({mono['per_fork_ns'] / 1e3:6.1f} us/fork)")

    print("\nFull per-CPU breakdown of the 4-core FaaS run "
          "(the SMP runner behind `python -m repro.harness smp`):\n")
    print(format_summary(run_smp(seed=7, num_cpus=4, requests=64,
                                 workload="faas")))


if __name__ == "__main__":
    main()

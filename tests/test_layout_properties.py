"""Property-based tests of the μprocess layout invariants (Fig 1)."""

from hypothesis import given, strategies as st

from repro.mem.layout import ProgramImage, SegmentMap

PAGE = 4096

SIZES = st.integers(min_value=1, max_value=1 << 22)


@given(
    code=SIZES, rodata=SIZES, data=SIZES, got_entries=st.integers(1, 4096),
    tls=SIZES, heap=SIZES, mmap=SIZES, stack=SIZES,
    base_pages=st.integers(1, 1 << 20),
)
def test_prop_layout_invariants(code, rodata, data, got_entries, tls,
                                heap, mmap, stack, base_pages):
    image = ProgramImage(
        "prop", code_size=code, rodata_size=rodata, data_size=data,
        got_entries=got_entries, tls_size=tls, heap_size=heap,
        mmap_size=mmap, stack_size=stack,
    )
    base = base_pages * PAGE
    layout = SegmentMap(image, base, PAGE)

    spans = [(spec.name, *layout.span(spec.name))
             for spec in image.segments()]

    # segments are page-aligned, contiguous, in declared order, and
    # cover every byte each segment asked for
    cursor = base
    for (name, lo, hi), spec in zip(spans, image.segments()):
        assert lo == cursor
        assert lo % PAGE == 0 and hi % PAGE == 0
        assert hi - lo >= spec.size
        assert hi - lo < spec.size + PAGE
        cursor = hi
    assert layout.region_top == cursor
    assert layout.region_size == image.region_size(PAGE)

    # GOT always holds all its entries
    assert layout.size("got") >= got_entries * 16

    # segment_of agrees with the spans on boundaries
    for name, lo, hi in spans:
        assert layout.segment_of(lo) == name
        assert layout.segment_of(hi - 1) == name

    # rebasing preserves all offsets exactly
    moved = layout.rebased(base + 128 * PAGE)
    for spec in image.segments():
        assert moved.base(spec.name) - moved.region_base == \
            layout.base(spec.name) - layout.region_base

"""SMP tier: machine wiring, the shootdown cost formula, IPI drop
recovery, spinlock semantics, per-CPU scheduling, and the throughput
acceptance criteria for the simulated multi-core machine."""

import pytest

from repro.kernel.sched import Scheduler, make_scheduler
from repro.kernel.task import Process, TaskState
from repro.machine import Machine
from repro.params import DEFAULT_COSTS
from repro.smp.sched import SmpScheduler


def smp_machine(num_cpus=4, seed=7, obs=True):
    machine = Machine(seed=seed, num_cpus=num_cpus)
    if obs:
        machine.obs.enable()
    return machine


def make_task(pid=100):
    return Process(pid=pid, name="victim").add_task()


# ----------------------------------------------------------------------
# Machine wiring
# ----------------------------------------------------------------------

class TestMachineWiring:
    def test_default_machine_is_uniprocessor(self):
        machine = Machine()
        assert machine.num_cpus == 1
        assert len(machine.cpus) == 1
        assert machine.tlb is machine.cores[0].tlb

    def test_cpus_grow_config_cores_when_needed(self):
        machine = Machine(num_cpus=8)
        assert machine.num_cpus == 8
        assert len(machine.cpus) == 8
        assert machine.config.cores >= 8

    def test_each_cpu_owns_a_private_tlb(self):
        machine = smp_machine(4)
        tlbs = [cpu.tlb for cpu in machine.cpus]
        assert len(set(map(id, tlbs))) == 4
        assert [tlb.cpu_id for tlb in tlbs] == [0, 1, 2, 3]

    def test_scheduler_factory_picks_by_cpu_count(self):
        assert isinstance(make_scheduler(Machine(), True), Scheduler)
        assert isinstance(make_scheduler(smp_machine(2, obs=False), True),
                          SmpScheduler)


# ----------------------------------------------------------------------
# Shootdown protocol + cost formula (satellite 1, docs/COSTMODEL.md)
# ----------------------------------------------------------------------

class TestShootdown:
    def test_cost_formula_matches_costmodel_helper(self):
        costs = DEFAULT_COSTS
        per_recipient = (costs.ipi_send_ns + costs.tlb_flush_ns
                         + costs.ipi_ack_ns)
        for recipients in range(5):
            assert costs.shootdown_ns(recipients) == \
                recipients * per_recipient

    def test_broadcast_charges_exactly_the_formula(self):
        machine = smp_machine(4)
        before = machine.clock.now_ns
        count = machine.tlb_shootdown(range(4), initiator=0)
        assert count == 3                       # initiator excluded
        elapsed = machine.clock.now_ns - before
        assert elapsed == machine.costs.shootdown_ns(3)
        assert machine.counters.get("tlb_shootdown_ipis") == 3
        assert machine.counters.get("tlb_shootdown_broadcast") == 1

    def test_recipients_flush_their_private_tlbs(self):
        machine = smp_machine(4)
        flushes_before = [cpu.tlb.flush_count for cpu in machine.cpus]
        machine.tlb_shootdown([1, 3], initiator=0)
        flushes = [cpu.tlb.flush_count - before for cpu, before
                   in zip(machine.cpus, flushes_before)]
        assert flushes == [0, 1, 0, 1]

    def test_empty_target_set_is_free_and_traceless(self):
        """R=0 must leave *no* observable trace — this is what keeps
        every 1-CPU golden bit-identical."""
        machine = smp_machine(4)
        before = machine.clock.now_ns
        assert machine.tlb_shootdown([], initiator=0) == 0
        assert machine.tlb_shootdown([0], initiator=0) == 0  # self only
        assert machine.clock.now_ns == before
        assert machine.counters.get("tlb_shootdown_broadcast") == 0
        assert machine.ipi.sent == 0

    def test_targets_clamped_to_online_cpus(self):
        machine = smp_machine(2)
        assert machine.tlb_shootdown([1, 5, 99], initiator=0) == 1


class TestIpiDrop:
    def test_dropped_ipi_is_resent_and_lands(self):
        from repro.chaos import ChaosEngine, FaultMix
        machine = smp_machine(2)
        engine = ChaosEngine(seed=7, mix=FaultMix.parse("smp.ipi.drop=1.0"))
        engine.attach(machine)
        before = machine.clock.now_ns
        attempts = machine.ipi.send(0, 1, "resched")
        assert attempts == 2
        assert machine.ipi.dropped == 1
        assert machine.ipi.resent == 1
        assert machine.ipi.acked == 1           # the retry always lands
        costs = machine.costs
        assert machine.clock.now_ns - before == (
            costs.ipi_send_ns + costs.ipi_timeout_ns
            + costs.ipi_send_ns + costs.ipi_ack_ns)
        assert engine.recovered.get("smp.ipi.drop") == 1


# ----------------------------------------------------------------------
# Kernel locking discipline
# ----------------------------------------------------------------------

class TestLocks:
    def test_uniprocessor_locks_are_free(self):
        machine = Machine()
        before = machine.clock.now_ns
        with machine.locks.fork.held():
            pass
        assert machine.clock.now_ns == before

    def test_smp_acquire_charges_spinlock_cost(self):
        machine = smp_machine(2)
        before = machine.clock.now_ns
        with machine.locks.fork.held():
            assert machine.irq_depth == 1
        assert machine.irq_depth == 0
        assert machine.clock.now_ns - before == machine.costs.spinlock_ns

    def test_double_acquire_asserts(self):
        machine = smp_machine(2)
        machine.locks.fork.acquire()
        with pytest.raises(AssertionError, match="deadlock"):
            machine.locks.fork.acquire()
        machine.locks.fork.release()

    def test_scheduling_while_atomic_asserts(self):
        machine = smp_machine(2)
        sched = SmpScheduler(machine, same_address_space=True)
        task = make_task()
        sched.add(task)
        with machine.locks.fork.held():
            with pytest.raises(AssertionError, match="atomic"):
                sched.switch_to(task, cpu=0)


# ----------------------------------------------------------------------
# Per-CPU scheduling, affinity, stealing
# ----------------------------------------------------------------------

class TestSmpScheduler:
    def test_placement_spreads_over_idle_cpus(self):
        machine = smp_machine(4)
        sched = SmpScheduler(machine, True)
        tasks = [make_task(pid) for pid in range(100, 104)]
        for task in tasks:
            sched.add(task)
        depths = [len(queue) for queue in sched._queues]
        assert depths == [1, 1, 1, 1]

    def test_affinity_restricts_placement_and_picks(self):
        machine = smp_machine(4)
        sched = SmpScheduler(machine, True)
        task = make_task()
        task.pin(2)
        sched.add(task)
        assert task in sched._queues[2]
        assert sched.pick_for_cpu(2) is task
        assert sched.pick_next(cpu=0) is None   # affinity bars CPU 0

    def test_affinity_excluding_all_online_cpus_raises(self):
        machine = smp_machine(2)
        sched = SmpScheduler(machine, True)
        task = make_task()
        task.pin(5)                             # offline CPU
        with pytest.raises(ValueError, match="excludes every online"):
            sched.add(task)

    def test_pin_requires_at_least_one_cpu(self):
        with pytest.raises(ValueError):
            make_task().pin()

    def test_steal_takes_oldest_from_most_loaded_victim(self):
        machine = smp_machine(2)
        sched = SmpScheduler(machine, True)
        first, second = make_task(100), make_task(101)
        sched._queues[0].update({first: None, second: None})
        stolen = sched.steal_into(1)
        assert stolen is first                  # oldest waiter migrates
        assert first in sched._queues[1]
        assert machine.counters.get("work_steal") == 1

    def test_steal_respects_affinity(self):
        machine = smp_machine(2)
        sched = SmpScheduler(machine, True)
        pinned = make_task()
        pinned.pin(0)
        sched._queues[0][pinned] = None
        assert sched.steal_into(1) is None
        assert pinned in sched._queues[0]

    def test_steal_never_resurrects_exited_task(self):
        machine = smp_machine(2)
        sched = SmpScheduler(machine, True)
        dead = make_task()
        sched._queues[0][dead] = None
        dead.state = TaskState.EXITED
        assert sched.steal_into(1) is None
        assert dead not in sched._queues[0]     # reaped from the queue

    def test_remove_is_idempotent_and_clears_current(self):
        machine = smp_machine(2)
        sched = SmpScheduler(machine, True)
        task = make_task()
        sched.add(task)
        sched.switch_to(task, cpu=1)
        assert sched.current_on(1) is task
        assert task.last_cpu == 1
        sched.remove(task)
        sched.remove(task)                      # second remove: no-op
        assert sched.current_on(1) is None

    def test_block_and_wake_never_resurrect_exited(self):
        machine = smp_machine(2)
        sched = SmpScheduler(machine, True)
        task = make_task()
        task.state = TaskState.EXITED
        sched.block(task)
        assert task.state is TaskState.EXITED
        sched.wake(task)
        assert task.state is TaskState.EXITED
        sched.add(task)
        assert sched.runnable_count == 0

    def test_mas_switch_flushes_only_that_cpus_tlb(self):
        machine = smp_machine(2)
        sched = SmpScheduler(machine, same_address_space=False)
        task = make_task()
        sched.add(task)
        flush0 = machine.cpus[0].tlb.flush_count
        flush1 = machine.cpus[1].tlb.flush_count
        sched.switch_to(task, cpu=1)
        assert machine.cpus[0].tlb.flush_count == flush0
        assert machine.cpus[1].tlb.flush_count == flush1 + 1


# ----------------------------------------------------------------------
# The §2.2 lightweightness argument, measured
# ----------------------------------------------------------------------

class TestForkGap:
    def test_monolithic_fork_broadcasts_ufork_does_not(self):
        """One fork each at 4 CPUs: classic fork pays exactly
        shootdown_ns(3); μFork's footprint-bounded broadcast is empty
        for a single-threaded unmigrated parent."""
        from repro.apps.guest import GuestContext
        from repro.apps.hello import hello_world_image
        from repro.baselines.monolithic import MonolithicOS
        from repro.core import IsolationConfig, UForkOS

        def one_fork(os_cls, **kwargs):
            machine = Machine(seed=7, num_cpus=4)
            os_ = os_cls(machine=machine, **kwargs)
            ctx = GuestContext(os_, os_.spawn(hello_world_image(), "p"))
            child = ctx.fork()
            child.exit(0)
            ctx.wait(child.pid)
            shoot_ns = (machine.clock.bucket_ns("ipi")
                        + machine.clock.bucket_ns("tlb_shootdown"))
            return machine.counters.get("tlb_shootdown_ipis"), shoot_ns

        mono_ipis, mono_ns = one_fork(MonolithicOS)
        uf_ipis, uf_ns = one_fork(UForkOS,
                                  isolation=IsolationConfig.fault())
        assert mono_ipis == 3
        assert uf_ipis == 0
        # both pay one resched IPI to wake the child's CPU; only the
        # monolithic fork pays the 3-recipient shootdown on top
        assert mono_ns - uf_ns == DEFAULT_COSTS.shootdown_ns(3)

    def test_gap_widens_with_core_count(self):
        from repro.smp.runner import run_smp
        ipis = {}
        for cpus in (1, 2, 4):
            summary = run_smp(seed=7, num_cpus=cpus, requests=4,
                              workload="forkbench")
            systems = summary["systems"]
            assert systems["ufork"]["shootdown_ipis"] == 0
            ipis[cpus] = systems["monolithic"]["shootdown_ipis"]
        assert ipis == {1: 0, 2: 4, 4: 12}      # forks × (N − 1)


# ----------------------------------------------------------------------
# Acceptance: 4-CPU FaaS throughput and SMP metrics in the export
# ----------------------------------------------------------------------

class TestFaasScaling:
    def test_four_cpu_faas_scales_at_least_2_5x(self):
        from repro.smp.runner import run_smp
        one = run_smp(seed=7, num_cpus=1, requests=24, workload="faas")
        four = run_smp(seed=7, num_cpus=4, requests=24, workload="faas")
        assert one["completed"] == four["completed"] == 24
        assert four["throughput_rps"] >= 2.5 * one["throughput_rps"]
        # the SMP machinery demonstrably participated...
        assert four["ipi"]["sent"] > 0
        assert four["ipi"]["acked"] == four["ipi"]["sent"]
        assert all(cpu["busy_ns"] > 0 for cpu in four["per_cpu"])
        # ...and its metrics landed in the obs export
        assert four["obs_export_sha256"] != one["obs_export_sha256"]

    def test_smp_metrics_present_in_export(self, tmp_path):
        import json
        from repro.smp.runner import run_smp
        run_smp(seed=7, num_cpus=4, requests=16, workload="faas",
                obs_dir=str(tmp_path))
        export = json.loads((tmp_path / "smp-7-c4.obs.json").read_text())
        counters = export["metrics"]["counters"]
        assert counters["smp.ipi.sent"] > 0
        assert counters["smp.ipi.acked"] > 0
        assert counters["smp.tlb.shootdowns"] > 0
        gauges = export["metrics"]["gauges"]
        for cpu in range(4):
            assert f"smp.cpu{cpu}.busy_ns" in gauges
            assert f"smp.cpu{cpu}.steps" in gauges

"""The conformance scenario corpus.

Every scenario here runs on the simulated kernel under all four fork
strategies at 1/2/4 CPUs *and* on the real host kernel, and the traces
must match (tests/test_conform_scenarios.py); the interleaving
explorer additionally replays each under permuted schedules.

Corpus rules (why every scenario is schedule-comparable to the
serialized host oracle — docs/CONFORMANCE.md explains each):

* a child never depends on anything its parent does *after* the fork
  (the oracle runs the child subtree to completion first);
* exit statuses stay in 0..127 (≥128 encodes signal death);
* payloads are small (well under pipe capacity and the guest staging
  buffer) and fork depth stays ≤ 3;
* a cross-process kill whose victim's event count depends on timing
  marks the scenario ``schedule_invariant=False`` so the explorer
  checks invariants but not trace equality across schedules.
"""

from __future__ import annotations

from typing import List

from repro.conform.dsl import (
    Scenario,
    close,
    dup2,
    exit_,
    fork,
    heap_get,
    heap_set,
    kill,
    pipe,
    probe,
    rd,
    shm_get,
    shm_set,
    sig_count,
    signal_,
    snapshot_,
    wait,
    wr,
)


def corpus() -> List[Scenario]:
    """Every conformance scenario, in a stable order."""
    scenarios = [
        # -- pipes and fd plumbing --------------------------------------
        Scenario("pipe-hello", {
            "main": (pipe("p"), fork("w"), close("p.w"), rd("p.r", 5),
                     wait("w1"), exit_(0)),
            "w": (close("p.r"), wr("p.w", "hello"), exit_(7)),
        }),
        Scenario("pipe-eof-short-read", {
            "main": (pipe("p"), fork("w"), close("p.w"), rd("p.r", 10),
                     wait("w1")),
            "w": (wr("p.w", "abc"), close("p.w"), exit_(0)),
        }),
        Scenario("pipe-two-reads", {
            "main": (pipe("p"), fork("w"), rd("p.r", 1), rd("p.r", 1),
                     wait("w1"), exit_(2)),
            "w": (wr("p.w", "xy"), exit_(0)),
        }),
        Scenario("pipe-two-children", {
            "main": (pipe("a"), pipe("b"), fork("wa"), fork("wb"),
                     close("a.w"), close("b.w"), rd("a.r", 4),
                     rd("b.r", 4), wait("wa1"), wait("wb1"), exit_(0)),
            "wa": (close("a.r"), wr("a.w", "aaaa"), heap_set("t", 1),
                   exit_(10)),
            "wb": (close("b.r"), wr("b.w", "bbbb"), heap_set("t", 2),
                   exit_(11)),
        }),
        Scenario("pipe-grandchild", {
            "main": (pipe("p"), fork("c"), close("p.w"), rd("p.r", 4),
                     wait("c1"), exit_(0)),
            "c": (fork("g"), wait("g1"), wr("p.w", "up"), exit_(1)),
            "g": (wr("p.w", "go"), exit_(2)),
        }),
        Scenario("pipe-child-closes-copy", {
            # fd tables are per-process: the child closing its p.r does
            # not close the parent's
            "main": (pipe("p"), fork("w"), rd("p.r", 1), wait("w1"),
                     exit_(0)),
            "w": (close("p.r"), wr("p.w", "z"), exit_(0)),
        }),
        Scenario("pipe-epipe", {
            "main": (pipe("p"), close("p.r"), wr("p.w", "x"), exit_(0)),
        }),
        Scenario("pipe-eof-no-writers", {
            "main": (pipe("p"), close("p.w"), rd("p.r", 4), exit_(0)),
        }),
        Scenario("fd-ebadf-after-close", {
            "main": (pipe("p"), close("p.w"), wr("p.w", "x"), exit_(0)),
        }),
        Scenario("fd-double-close", {
            "main": (pipe("p"), close("p.r"), close("p.r"), exit_(0)),
        }),
        Scenario("fd-wrong-end-read", {
            "main": (pipe("p"), rd("p.w", 1), wr("p.r", "x"), exit_(0)),
        }),
        # -- dup2 -------------------------------------------------------
        Scenario("dup2-alias", {
            "main": (pipe("p"), dup2("p.w", "w2"), close("p.w"),
                     wr("w2", "abc"), close("w2"), rd("p.r", 3),
                     exit_(1)),
        }),
        Scenario("dup2-closes-target", {
            # dup2 onto q.w closes q's only writer, so q.r hits EOF
            "main": (pipe("p"), pipe("q"), dup2("p.w", "q.w"),
                     wr("q.w", "hi"), rd("p.r", 2), rd("q.r", 1),
                     exit_(0)),
        }),
        Scenario("dup2-self", {
            "main": (pipe("p"), dup2("p.w", "p.w"), wr("p.w", "ok"),
                     rd("p.r", 2), exit_(0)),
        }),
        Scenario("dup2-inherited", {
            "main": (pipe("p"), dup2("p.w", "w2"), fork("c"),
                     close("p.w"), close("w2"), rd("p.r", 3),
                     wait("c1"), exit_(0)),
            "c": (wr("w2", "dup"), exit_(4)),
        }),
        # -- private heap (fork isolation) ------------------------------
        Scenario("heap-child-private", {
            "main": (heap_set("x", 1), fork("c"), wait("c1"),
                     heap_get("x"), exit_(0)),
            "c": (heap_set("x", 2), heap_get("x"), exit_(0)),
        }),
        Scenario("heap-parent-private", {
            # parent mutates after fork; child's inherited copy is
            # unaffected — but the child only reads its *own* snapshot
            "main": (heap_set("x", 5), fork("c"), heap_set("x", 6),
                     wait("c1"), heap_get("x"), exit_(0)),
            "c": (heap_get("x"), exit_(0)),
        }),
        Scenario("heap-many-cells", {
            "main": (heap_set("a", 1), heap_set("b", 2), heap_set("c", 3),
                     fork("k"), wait("k1"), heap_get("a"), heap_get("b"),
                     heap_get("c"), exit_(0)),
            "k": (heap_get("a"), heap_set("b", 20), heap_get("b"),
                  heap_get("c"), exit_(9)),
        }),
        Scenario("heap-deep-chain", {
            "main": (heap_set("x", 1), fork("a"), wait("a1"),
                     heap_get("x"), exit_(0)),
            "a": (heap_set("x", 2), fork("b"), wait("b1"), heap_get("x"),
                  exit_(3)),
            "b": (heap_set("x", 3), heap_get("x"), exit_(4)),
        }),
        # -- MAP_SHARED memory ------------------------------------------
        Scenario("shm-survives-fork", {
            "main": (shm_set("v", 10), fork("c"), wait("c1"),
                     shm_get("v"), exit_(0)),
            "c": (shm_set("v", 42), exit_(3)),
        }),
        Scenario("shm-two-vars", {
            "main": (shm_set("a", 1), fork("c"), wait("c1"), shm_get("a"),
                     shm_get("b"), exit_(0)),
            "c": (shm_get("a"), shm_set("b", 7), exit_(0)),
        }),
        Scenario("shm-vs-heap", {
            # same var name, different worlds: the heap copy forks
            # private, the shm cell stays shared
            "main": (heap_set("v", 1), shm_set("v", 1), fork("c"),
                     wait("c1"), heap_get("v"), shm_get("v"), exit_(0)),
            "c": (heap_set("v", 2), shm_set("v", 2), exit_(0)),
        }),
        # -- wait semantics ---------------------------------------------
        Scenario("wait-exit-status", {
            "main": (fork("c"), wait("c1"), exit_(0)),
            "c": (exit_(42),),
        }),
        Scenario("wait-any-two", {
            "main": (fork("a"), fork("b"), wait(None), wait(None),
                     exit_(0)),
            "a": (exit_(21),),
            "b": (exit_(22),),
        }),
        Scenario("wait-echild", {
            "main": (wait(None), exit_(0)),
        }),
        Scenario("wait-echild-after-reap", {
            "main": (fork("c"), wait("c1"), wait(None), exit_(0)),
            "c": (exit_(1),),
        }),
        Scenario("exit-implicit-and-127", {
            "main": (fork("c"), wait("c1"), fork("d"), wait("d1")),
            "c": (heap_set("x", 1),),          # implicit exit(0)
            "d": (exit_(127),),
        }),
        # -- signals ----------------------------------------------------
        Scenario("signal-count-from-child", {
            "main": (signal_("USR1", "count"), fork("c"), wait("c1"),
                     sig_count("USR1"), exit_(0)),
            "c": (kill("parent", "USR1"), exit_(0)),
        }),
        Scenario("signal-two-kinds", {
            "main": (signal_("USR1", "count"), signal_("USR2", "count"),
                     fork("c"), wait("c1"), sig_count("USR1"),
                     sig_count("USR2"), exit_(0)),
            "c": (kill("parent", "USR1"), kill("parent", "USR2"),
                  exit_(0)),
        }),
        Scenario("signal-ignored", {
            "main": (signal_("USR1", "ignore"), fork("c"), wait("c1"),
                     exit_(6)),
            "c": (kill("parent", "USR1"), exit_(0)),
        }),
        Scenario("signal-handlers-inherited", {
            # dispositions cross fork: the child's counter starts at the
            # value inherited at fork (0) and counts its own deliveries
            "main": (signal_("USR1", "count"), fork("c"), wait("c1"),
                     sig_count("USR1"), exit_(0)),
            "c": (kill("self", "USR1"), sig_count("USR1"), exit_(0)),
        }),
        Scenario("signal-default-terminates", {
            "main": (fork("v"), wait("v1"), exit_(0)),
            "v": (kill("self", "USR2"),),
        }),
        Scenario("signal-term-child", {
            "main": (fork("v"), wait("v1"), exit_(0)),
            "v": (heap_set("x", 1), kill("self", "TERM")),
        }),
        Scenario("sigkill-uncatchable", {
            "main": (fork("v"), wait("v1"), exit_(0)),
            "v": (kill("self", "KILL"), heap_set("never", 1)),
        }),
        Scenario("sigchld-discarded", {
            "main": (fork("c"), wait("c1"), sig_count("CHLD"), exit_(0)),
            "c": (exit_(0),),
        }, schedule_invariant=True),
        Scenario("contended-pipe", {
            # three writers share one pipe: every interleaving conflicts
            # (same footprint), so the explorer prunes nothing — yet the
            # trace is schedule-invariant because the payloads are
            # identical and wait-any order is normalized
            "main": (pipe("p"), fork("w"), fork("w"), fork("w"),
                     close("p.w"), rd("p.r", 15), wait(None), wait(None),
                     wait(None), exit_(0)),
            "w": (wr("p.w", "x"), wr("p.w", "x"), wr("p.w", "x"),
                  wr("p.w", "x"), wr("p.w", "x"), exit_(0)),
        }),
        # -- the kitchen sink (explorer fodder) -------------------------
        Scenario("mixed-pipeline", {
            "main": (pipe("p"), shm_set("s", 1), heap_set("h", 1),
                     signal_("USR1", "count"), fork("c"), close("p.w"),
                     rd("p.r", 6), wait("c1"), sig_count("USR1"),
                     shm_get("s"), heap_get("h"), exit_(0)),
            "c": (close("p.r"), heap_set("h", 2), shm_set("s", 2),
                  wr("p.w", "mixed!"), kill("parent", "USR1"),
                  exit_(5)),
        }),
    ]
    return scenarios


def snapshot_corpus() -> List[Scenario]:
    """Checkpoint/restore scenarios — **sim-only** (the host oracle has
    no CRIU), so they run under the interleaving explorer and the farm
    but are excluded from host-differential ``corpus()``.

    The snapshot op clones the caller at a syscall boundary: private
    heap and pipe *buffers* are duplicated (unlike fork, where pipes
    stay shared), string signal dispositions survive, and gated state
    (shm) degrades to an err event with the kernel rolled back.
    """
    return [
        Scenario("snapshot-clone-heap", {
            # the clone sees the heap as of the checkpoint; writes on
            # either side stay private — fork isolation, via a blob
            "main": (heap_set("x", 1), snapshot_("c"), wait("c1"),
                     heap_get("x"), exit_(0)),
            "c": (heap_get("x"), heap_set("x", 2), heap_get("x"),
                  exit_(3)),
        }),
        Scenario("snapshot-clone-exit-status", {
            "main": (snapshot_("c"), wait("c1"), exit_(0)),
            "c": (exit_(42),),
        }),
        Scenario("snapshot-pipe-buffer-duplicated", {
            # both sides read the same two bytes: the clone got its own
            # copy of the buffered pipe, not a shared description
            "main": (pipe("p"), wr("p.w", "ab"), snapshot_("c"),
                     wait("c1"), rd("p.r", 2), exit_(0)),
            "c": (rd("p.r", 2), exit_(0)),
        }),
        Scenario("snapshot-signal-disposition-survives", {
            # "ignore" is a string disposition: it crosses the blob, so
            # the clone's self-kill is a no-op
            "main": (signal_("USR1", "ignore"), snapshot_("c"),
                     wait("c1"), exit_(6)),
            "c": (kill("self", "USR1"), exit_(0)),
        }),
        Scenario("snapshot-nested", {
            # a clone of a clone: restore grafts fully into the process
            # lifecycle, including being itself checkpointable
            "main": (heap_set("x", 1), snapshot_("c"), wait("c1"),
                     heap_get("x"), exit_(0)),
            "c": (snapshot_("g"), wait("g1"), heap_get("x"), exit_(2)),
            "g": (heap_set("x", 9), heap_get("x"), exit_(1)),
        }),
        Scenario("snapshot-shm-gated", {
            # MAP_SHARED memory is outside snapshot v1: the op degrades
            # to an err event and main continues undamaged
            "main": (shm_set("v", 1), snapshot_("c"), shm_get("v"),
                     exit_(0)),
            "c": (exit_(0),),
        }),
    ]


def sec_corpus() -> List[Scenario]:
    """Capability-probe scenarios — **sim-only** (host processes have
    no capabilities to attack), run under the interleaving explorer and
    the farm alongside the snapshot corpus.

    Each ("probe", what) op mounts a real capability attack from inside
    the scenario process and records the fault class that stopped it as
    a trace event.  Because the scenarios are schedule-invariant, the
    explorer's cross-schedule trace equality proves the defense fires
    identically under every interleaving — and the capability-flow
    auditor (repro.sec.auditor, wired into check_invariants) audits
    every preemption point the probes create.
    """
    return [
        Scenario("sec-probe-across-fork", {
            # both sides of a fork boundary mount both attacks; the
            # recorded fault never depends on which side runs first
            "main": (probe("oob"), fork("c"), wait("c1"), probe("tag"),
                     exit_(0)),
            "c": (probe("oob"), probe("tag"), exit_(3)),
        }),
        Scenario("sec-probe-under-cow", {
            # heap writes on both sides break CoW sharing while the
            # probes run: relocation traffic must not blunt a defense
            "main": (heap_set("x", 1), fork("c"), probe("tag"),
                     wait("c1"), heap_get("x"), exit_(0)),
            "c": (heap_set("x", 2), probe("oob"), heap_get("x"),
                  exit_(0)),
        }),
    ]


def by_name(name: str) -> Scenario:
    for scenario in corpus() + snapshot_corpus() + sec_corpus():
        if scenario.name == name:
            return scenario
    raise KeyError(f"no conformance scenario named {name!r}")

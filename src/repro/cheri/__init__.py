"""Software model of CHERI capabilities.

This package reproduces the capability *semantics* μFork depends on
(§2.4 of the paper): 128-bit capabilities carrying bounds and
permissions, hardware-enforced monotonicity, one validity tag per
16-byte granule, and sealed (sentry) capabilities for trapless
security-domain transitions.
"""

from repro.cheri.capability import (
    Capability,
    Perm,
    OTYPE_UNSEALED,
    OTYPE_SENTRY,
)
from repro.cheri.regfile import RegisterFile
from repro.cheri.codec import CapabilityCodec, CAP_SIZE

__all__ = [
    "Capability",
    "Perm",
    "OTYPE_UNSEALED",
    "OTYPE_SENTRY",
    "RegisterFile",
    "CapabilityCodec",
    "CAP_SIZE",
]

"""Unixbench-style microbenchmarks (paper §5.2, Fig 9).

* **Spawn** — fork and reap processes as fast as possible (the paper
  runs 1000 fork+exit iterations);
* **Context1** — two processes increment a counter through a pair of
  pipes, context-switching on every hop (the paper runs to 100k).

Both are pure measurements of the OS mechanisms μFork targets: fork
latency, syscall entry, and context-switch/IPC cost in (or out of) a
single address space.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any

_U32 = struct.Struct("<I")


@dataclass
class SpawnResult:
    iterations: int
    total_ns: int

    @property
    def per_fork_us(self) -> float:
        return self.total_ns / self.iterations / 1_000


@dataclass
class Context1Result:
    iterations: int
    total_ns: int
    final_value: int

    @property
    def per_iteration_us(self) -> float:
        return self.total_ns / self.iterations / 1_000


def spawn(ctx: Any, iterations: int = 1000) -> SpawnResult:
    """Unixbench Spawn: fork + exit + wait, ``iterations`` times."""
    machine = ctx.os.machine
    with machine.clock.measure() as watch:
        for _ in range(iterations):
            child = ctx.fork()
            child.exit(0)
            ctx.wait(child.pid)
    return SpawnResult(iterations=iterations, total_ns=watch.elapsed_ns)


@dataclass
class PipeThroughputResult:
    bytes_moved: int
    total_ns: int

    @property
    def mb_per_s(self) -> float:
        if self.total_ns == 0:
            return 0.0
        return self.bytes_moved / (1 << 20) / (self.total_ns / 1e9)


@dataclass
class SyscallRateResult:
    calls: int
    total_ns: int

    @property
    def per_syscall_ns(self) -> float:
        return self.total_ns / self.calls

    @property
    def calls_per_s(self) -> float:
        return self.calls * 1e9 / self.total_ns


def pipe_throughput(ctx: Any, total_bytes: int = 1 << 20,
                    chunk: int = 4096) -> PipeThroughputResult:
    """Unixbench "Pipe Throughput"-style: stream bytes through a pipe
    between parent and child, chunk by chunk."""
    os_ = ctx.os
    machine = os_.machine
    read_fd, write_fd = ctx.syscall("pipe")
    child = ctx.fork()
    parent_task = ctx.proc.main_task()
    child_task = child.proc.main_task()
    buf_parent = ctx.malloc(chunk)
    buf_child = child.malloc(chunk)
    ctx.store(buf_parent, b"P" * chunk)

    moved = 0
    with machine.clock.measure() as watch:
        os_.sched.switch_to(parent_task)
        while moved < total_bytes:
            step = min(chunk, total_bytes - moved)
            ctx.syscall("write", write_fd, buf_parent, step)
            os_.sched.switch_to(child_task)
            child.syscall("read", read_fd, buf_child, step)
            os_.sched.switch_to(parent_task)
            moved += step
    child.exit(0)
    ctx.wait(child.pid)
    return PipeThroughputResult(bytes_moved=moved, total_ns=watch.elapsed_ns)


def syscall_rate(ctx: Any, calls: int = 1000) -> SyscallRateResult:
    """Unixbench "Syscall Overhead"-style: the cheapest syscall, in a
    tight loop — isolates the entry mechanism (sealed gate vs trap)."""
    machine = ctx.os.machine
    with machine.clock.measure() as watch:
        for _ in range(calls):
            ctx.syscall("getpid")
    return SyscallRateResult(calls=calls, total_ns=watch.elapsed_ns)


def context1(ctx: Any, target: int = 100_000) -> Context1Result:
    """Unixbench Context1: a counter ping-pongs between parent and
    child over two pipes until it reaches ``target``.

    Every hop costs: write syscall, context switch to the peer, read
    syscall — the IPC path where the single address space wins (no page
    table switch, no TLB flush, trapless entry).
    """
    os_ = ctx.os
    machine = os_.machine

    ping_read, ping_write = ctx.syscall("pipe")
    pong_read, pong_write = ctx.syscall("pipe")
    child = ctx.fork()

    parent_task = ctx.proc.main_task()
    child_task = child.proc.main_task()
    buf_parent = ctx.malloc(16)
    buf_child = child.malloc(16)

    value = 0
    with machine.clock.measure() as watch:
        os_.sched.switch_to(parent_task)
        while value < target:
            # parent: send the counter
            ctx.store(buf_parent, _U32.pack(value))
            ctx.syscall("write", ping_write, buf_parent, 4)
            os_.sched.switch_to(child_task)
            # child: receive, increment, send back
            child.syscall("read", ping_read, buf_child, 4)
            (received,) = _U32.unpack(child.load(buf_child, 4))
            child.store(buf_child, _U32.pack(received + 1))
            child.syscall("write", pong_write, buf_child, 4)
            os_.sched.switch_to(parent_task)
            # parent: receive the incremented counter
            ctx.syscall("read", pong_read, buf_parent, 4)
            (value,) = _U32.unpack(ctx.load(buf_parent, 4))

    child.exit(0)
    ctx.wait(child.pid)
    return Context1Result(
        iterations=target, total_ns=watch.elapsed_ns, final_value=value
    )

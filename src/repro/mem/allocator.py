"""The guest heap allocator (tinyalloc-style, §4.1/§4.2).

The allocator's *entire* state lives in simulated guest memory — a
header plus an array of block records at the base of the μprocess's
static heap — and every block record holds a tagged **capability** to
its block.  This matters for μFork in two ways:

* the metadata pages are exactly the "memory-allocator metadata" the
  paper proactively copies and relocates during fork (§3.5 step 1);
* after a fork, the child's allocator re-attaches by reading those
  (relocated) records back from memory, so allocator correctness in the
  child is a direct test of relocation correctness.

Per CHERI requirements the allocator is 16-byte aligned throughout and
returns capabilities *bounded to the allocation* (§4.1).
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional

from repro.cheri.capability import Capability, Perm
from repro.errors import InvalidArgument, OutOfMemory

#: header: magic, record_count, fresh_offset, free_head (4 x u64)
HEADER_SIZE = 32
_HEADER = struct.Struct("<QQQQ")
_MAGIC = 0x75464F524B414C4C  # "uFORKALL"

#: record: capability granule (16B) + size u64 + used u32 + next u32
ALLOC_RECORD_SIZE = 32
_RECORD_TAIL = struct.Struct("<QII")

ALIGN = 16


class GuestAllocator:
    """A first-fit free-list allocator over a static in-memory heap.

    ``space`` is the address space the heap lives in; accesses are
    unprivileged (the allocator is user code).  ``heap_cap`` is the
    capability covering the heap segment, from which block capabilities
    are derived monotonically.
    """

    def __init__(self, machine: Any, space: Any, heap_cap: Capability,
                 max_blocks: Optional[int] = None) -> None:
        self.machine = machine
        self.space = space
        self.heap_cap = heap_cap
        self.heap_base = heap_cap.base
        self.heap_size = heap_cap.length
        if max_blocks is None:
            heap_pages = self.heap_size // machine.config.page_size
            max_blocks = max(256, min(16384, heap_pages * 2))
        self.max_blocks = max_blocks
        self.metadata_size = self._align_page(
            HEADER_SIZE + max_blocks * ALLOC_RECORD_SIZE
        )
        if self.metadata_size >= self.heap_size:
            raise InvalidArgument("heap too small for allocator metadata")
        self.data_base = self.heap_base + self.metadata_size
        self.data_size = self.heap_size - self.metadata_size
        #: python-side cache: block base address -> record index.  Pure
        #: cache — rebuilt from guest memory by :meth:`attach`.
        self._index: Dict[int, int] = {}
        self._needs_attach = False

    # -- formatting / attaching ------------------------------------------------

    def format(self) -> None:
        """Initialize a fresh heap (program load time)."""
        self._write_header(record_count=0, fresh_offset=0, free_head=0)
        self._index.clear()

    def attach(self) -> None:
        """Re-attach to an existing heap, e.g. in a forked child.

        Rebuilds the address index by reading every record back from
        (possibly relocated) guest memory.
        """
        magic, count, _fresh, _free = self._read_header()
        if magic != _MAGIC:
            raise InvalidArgument("heap is not formatted")
        self._index.clear()
        for record in range(count):
            cap, _size, used, _next_free = self._read_record(record)
            if used and cap.valid:
                self._index[cap.base] = record
        self._needs_attach = False

    def attach_lazy(self) -> None:
        """Defer :meth:`attach` until the allocator is first used (the
        real child never scans its records at fork — the state is
        already in its memory; only this simulator cache needs it)."""
        self._needs_attach = True

    def _ensure_attached(self) -> None:
        if self._needs_attach:
            self.attach()

    # -- allocation -------------------------------------------------------------

    def malloc(self, size: int) -> Capability:
        """Allocate ``size`` bytes; returns a capability bounded to them."""
        if size <= 0:
            raise InvalidArgument(f"malloc({size})")
        self._ensure_attached()
        self.machine.charge(self.machine.costs.malloc_ns, "malloc")
        size = self._align(size)
        magic, count, fresh, free_head = self._read_header()
        if magic != _MAGIC:
            raise InvalidArgument("heap is not formatted")

        # first fit over the free list
        prev = 0
        node = free_head
        while node:
            record = node - 1
            cap, block_size, used, next_free = self._read_record(record)
            if not used and block_size >= size:
                self._unlink_free(prev, record, next_free, free_head)
                self._write_record(record, cap, block_size, used=1,
                                   next_free=0)
                self._index[cap.base] = record
                return self._user_cap(cap.base, block_size)
            prev = node
            node = next_free

        # fresh allocation from the bump area
        if fresh + size > self.data_size:
            raise OutOfMemory(
                f"guest heap exhausted ({self.data_size - fresh} free, "
                f"need {size})"
            )
        if count >= self.max_blocks:
            raise OutOfMemory("allocator record table full")
        block_base = self.data_base + fresh
        block_cap = self._block_cap(block_base, size)
        self._write_record(count, block_cap, size, used=1, next_free=0)
        self._write_header(record_count=count + 1, fresh_offset=fresh + size,
                           free_head=free_head)
        self._index[block_base] = count
        return self._user_cap(block_base, size)

    def free(self, cap_or_addr) -> None:
        """Release an allocation (by capability or base address)."""
        self._ensure_attached()
        self.machine.charge(self.machine.costs.free_ns, "free")
        addr = cap_or_addr.base if isinstance(cap_or_addr, Capability) \
            else cap_or_addr
        record = self._index.get(addr)
        if record is None:
            record = self._find_record(addr)
        if record is None:
            raise InvalidArgument(f"free of unknown block {addr:#x}")
        cap, size, used, _next = self._read_record(record)
        if not used:
            raise InvalidArgument(f"double free of {addr:#x}")
        magic, count, fresh, free_head = self._read_header()
        self._write_record(record, cap, size, used=0, next_free=free_head)
        self._write_header(record_count=count, fresh_offset=fresh,
                           free_head=record + 1)
        self._index.pop(addr, None)

    # -- introspection -----------------------------------------------------------

    def used_bytes(self) -> int:
        self._ensure_attached()
        _magic, count, _fresh, _free = self._read_header()
        total = 0
        for record in range(count):
            _cap, size, used, _next = self._read_record(record)
            if used:
                total += size
        return total

    def block_count(self) -> int:
        self._ensure_attached()
        return len(self._index)

    def live_blocks(self) -> List[Capability]:
        """Capabilities of all live blocks (re-read from guest memory)."""
        self._ensure_attached()
        _magic, count, _fresh, _free = self._read_header()
        blocks = []
        for record in range(count):
            cap, size, used, _next = self._read_record(record)
            if used:
                blocks.append(self._user_cap(cap.base, size))
        return blocks

    def metadata_span(self):
        """(base, top) of the metadata area — the pages μFork must
        eagerly copy at fork."""
        return self.heap_base, self.heap_base + self.metadata_size

    # -- record I/O (all through simulated memory) ---------------------------------

    def _record_addr(self, record: int) -> int:
        return self.heap_base + HEADER_SIZE + record * ALLOC_RECORD_SIZE

    def _read_header(self):
        raw = self.space.read(self.heap_base, HEADER_SIZE, charge=False)
        return _HEADER.unpack(raw)

    def _write_header(self, record_count: int, fresh_offset: int,
                      free_head: int) -> None:
        self.space.write(
            self.heap_base,
            _HEADER.pack(_MAGIC, record_count, fresh_offset, free_head),
            charge=False,
        )

    def _read_record(self, record: int):
        addr = self._record_addr(record)
        cap = self.space.load_cap(addr)
        raw = self.space.read(addr + 16, 16, charge=False)
        size, used, next_free = _RECORD_TAIL.unpack(raw)
        return cap, size, used, next_free

    def _write_record(self, record: int, cap: Capability, size: int,
                      used: int, next_free: int) -> None:
        addr = self._record_addr(record)
        self.space.write(addr + 16, _RECORD_TAIL.pack(size, used, next_free),
                         charge=False)
        # store the capability last: the byte write above must not clear it
        self.space.store_cap(addr, cap)

    def _unlink_free(self, prev_node: int, record: int, next_free: int,
                     free_head: int) -> None:
        if prev_node == 0:
            magic, count, fresh, _head = self._read_header()
            self._write_header(count, fresh, next_free)
        else:
            prev_record = prev_node - 1
            cap, size, used, _next = self._read_record(prev_record)
            self._write_record(prev_record, cap, size, used, next_free)

    def _find_record(self, addr: int) -> Optional[int]:
        _magic, count, _fresh, _free = self._read_header()
        for record in range(count):
            cap, _size, used, _next = self._read_record(record)
            if used and cap.base == addr:
                return record
        return None

    # -- capability derivation ------------------------------------------------------

    def _block_cap(self, base: int, size: int) -> Capability:
        return self.heap_cap.set_bounds(base, size).with_cursor(base)

    def _user_cap(self, base: int, size: int) -> Capability:
        return self._block_cap(base, size).and_perms(Perm.data_rw())

    # -- helpers -------------------------------------------------------------------

    @staticmethod
    def _align(size: int) -> int:
        return (size + ALIGN - 1) // ALIGN * ALIGN

    def _align_page(self, size: int) -> int:
        page = self.machine.config.page_size
        return (size + page - 1) // page * page

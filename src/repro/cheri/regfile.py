"""Capability register file.

Each μprocess thread owns a :class:`RegisterFile`.  Registers hold either
a :class:`~repro.cheri.capability.Capability` or a plain integer; as on
Morello, "tags extend to values in registers" (§3.5), which is what lets
μFork relocate exactly the capability-valued registers at fork time
without mistaking integers for pointers.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple, Union

from repro.cheri.capability import Capability

RegValue = Union[Capability, int]

#: program counter capability — bounds PIC-relative code references
PCC = "pcc"
#: capability stack pointer
CSP = "csp"
#: default data capability (the μprocess's whole region)
DDC = "ddc"
#: GOT base register
CGP = "cgp"
#: thread-local storage base
CTP = "ctp"

WELL_KNOWN = (PCC, CSP, DDC, CGP, CTP)


class RegisterFile:
    """A small named register file (well-known + general registers)."""

    def __init__(self) -> None:
        self._regs: Dict[str, RegValue] = {}

    def get(self, name: str) -> RegValue:
        if name not in self._regs:
            raise KeyError(f"register {name!r} never written")
        return self._regs[name]

    def get_cap(self, name: str) -> Capability:
        value = self.get(name)
        if not isinstance(value, Capability):
            raise TypeError(f"register {name!r} holds an integer, not a capability")
        return value

    def set(self, name: str, value: RegValue) -> None:
        self._regs[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self._regs

    def items(self) -> Iterator[Tuple[str, RegValue]]:
        return iter(self._regs.items())

    def cap_registers(self) -> Iterator[Tuple[str, Capability]]:
        """Iterate only the registers currently holding valid capabilities
        (the set μFork must relocate when creating the child, §3.5)."""
        for name, value in self._regs.items():
            if isinstance(value, Capability) and value.valid:
                yield name, value

    def copy_from(self, other: "RegisterFile") -> None:
        """Overwrite this file with another's contents (register-state
        inheritance at fork/thread-create)."""
        for name, value in other.items():
            self.set(name, value)

    def copy(self) -> "RegisterFile":
        clone = RegisterFile()
        clone._regs = dict(self._regs)
        return clone

    def __len__(self) -> int:
        return len(self._regs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegisterFile({self._regs!r})"

"""Application/syscall compatibility matrix (Loupe-style).

The paper builds on Unikraft for its "large compatibility with
unmodified applications" (§4, citing Loupe).  This module measures that
compatibility claim for the reproduction: it runs each workload's
representative scenario on a fresh μFork machine and records exactly
which syscalls it exercised, producing the app × syscall matrix a
compatibility-layer developer would start from.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

# NOTE: this module stays import-light (no OS-stack imports at module
# scope).  It used to duplicate obsreport's heavy import block, which
# made ``import repro.harness`` boot the whole simulator before the CLI
# could even print --help; workloads resolve their dependencies when
# they actually run, and machine construction goes through the
# :mod:`repro.api` facade.


def _run_hello(os_: Any) -> None:
    from repro.apps.guest import GuestContext
    from repro.apps.hello import hello_world_image, run_hello
    ctx = GuestContext(os_, os_.spawn(hello_world_image(), "hello"))
    run_hello(ctx)
    child = ctx.fork()
    child.exit(0)
    ctx.wait(child.pid)


def _run_redis(os_: Any) -> None:
    from repro.apps.guest import GuestContext
    from repro.apps.redis import MiniRedis, redis_image
    from repro.mem.layout import MiB
    proc = os_.spawn(redis_image(1 * MiB), "redis")
    store = MiniRedis(GuestContext(os_, proc), nbuckets=64)
    store.set(b"k", b"v")
    store.get(b"k")
    store.bgsave("/dump.rdb")
    store.load_from("/dump.rdb")


def _run_faas(os_: Any) -> None:
    from repro.apps.faas import ZygoteRuntime, faas_image
    from repro.apps.guest import GuestContext
    runtime = ZygoteRuntime(GuestContext(os_, os_.spawn(faas_image(), "z")))
    runtime.warm()
    runtime.handle_request()


def _run_nginx(os_: Any) -> None:
    from repro.apps.guest import GuestContext
    from repro.apps.nginx import MiniNginx, WrkClient, nginx_image
    master = GuestContext(os_, os_.spawn(nginx_image(), "nginx"))
    server = MiniNginx(master)
    server.fork_workers(1)
    wrk = WrkClient(GuestContext(os_, os_.spawn(nginx_image(), "wrk")))
    fd = wrk.issue()
    server.serve_one(server.workers[0])
    wrk.complete(fd)
    server.shutdown()


def _run_qmail(os_: Any) -> None:
    from repro.apps.guest import GuestContext
    from repro.apps.qmail import MiniQmail, qmail_image, send_mail
    master = GuestContext(os_, os_.spawn(qmail_image(), "qmail"))
    server = MiniQmail(master)
    server.start()
    client = GuestContext(os_, os_.spawn(qmail_image(), "client"))
    send_mail(client, b"alice", b"hi")
    server.smtpd_handle_one()
    server.local_deliver_all()
    server.shutdown()


def _run_unixbench(os_: Any) -> None:
    from repro.apps import unixbench
    from repro.apps.guest import GuestContext
    from repro.apps.hello import hello_world_image
    ctx = GuestContext(os_, os_.spawn(hello_world_image(), "bench"))
    unixbench.spawn(ctx, iterations=2)
    unixbench.context1(ctx, target=3)


WORKLOADS: Dict[str, Callable[[Any], None]] = {
    "hello": _run_hello,
    "redis": _run_redis,
    "faas": _run_faas,
    "nginx": _run_nginx,
    "qmail": _run_qmail,
    "unixbench": _run_unixbench,
}


def syscalls_used(run: Callable[[Any], None]) -> Dict[str, int]:
    """Run one workload hermetically; returns syscall → count."""
    from repro.api import Session

    # seed=0 matches the old bare Machine() construction bit for bit
    session = Session(os="ufork", seed=0).boot()
    run(session.os)
    return {
        name[len("syscall_"):]: count
        for name, count in session.report()["counters"].items()
        if name.startswith("syscall_") and count > 0
    }


def compatibility_matrix() -> Tuple[List[str], Dict[str, Dict[str, int]]]:
    """(all syscalls sorted, app → syscall → count)."""
    per_app = {name: syscalls_used(run) for name, run in WORKLOADS.items()}
    all_syscalls = sorted({
        syscall for used in per_app.values() for syscall in used
    })
    return all_syscalls, per_app


def matrix_rows() -> List[Dict[str, Any]]:
    """Rows for rendering: one per syscall, an x per app using it."""
    all_syscalls, per_app = compatibility_matrix()
    rows = []
    for syscall in all_syscalls:
        row: Dict[str, Any] = {"syscall": syscall}
        for app in WORKLOADS:
            row[app] = "x" if syscall in per_app[app] else ""
        rows.append(row)
    return rows

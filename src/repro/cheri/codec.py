"""In-memory encoding of capabilities.

Real CHERI compresses a capability's bounds and permissions into 128
bits next to the 64-bit address.  The simulation keeps memory honest —
a capability stored to memory occupies exactly one 16-byte granule whose
first 8 bytes are the little-endian cursor (so integer loads of a
pointer's bytes observe its address, as on hardware) — and interns the
metadata half (bounds, permissions, otype) in a table indexed by the
second 8 bytes.

The *authority* to dereference never comes from these bytes alone: the
granule's validity tag (held in :mod:`repro.hw.phys`) is authoritative,
so overwriting a capability's bytes or forging a metadata index yields
an untagged, powerless value — the CHERI unforgeability property.
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple

from repro.cheri.capability import Capability, Perm, _fast_cap

#: a capability occupies one granule
CAP_SIZE = 16

_META_STRUCT = struct.Struct("<QQ")


#: memo tables are dropped wholesale once they reach this many entries
#: (they are per-machine; real workloads stay far below the cap)
_MEMO_CAP = 65536


class CapabilityCodec:
    """Interns capability metadata and packs/unpacks 16-byte granules.

    With :mod:`repro.perf` enabled, encode and decode are memoised.
    Both memos are sound by construction: a metadata tuple, once
    interned, never changes, so a ``(cursor, meta_id, valid)`` triple
    always decodes to an equal :class:`Capability`.  The one case that
    is *not* cacheable — raw bytes naming a meta id that does not exist
    yet (a forged capability) — is deliberately left uncached, because
    interning could later create that id and change the decode result.
    """

    def __init__(self) -> None:
        self._meta_to_id: Dict[Tuple[int, int, int, int], int] = {}
        self._id_to_meta: Dict[int, Tuple[int, int, int, int]] = {}
        self._encode_memo: Dict[Tuple[int, int, int, int, int], bytes] = {}
        self._decode_memo: Dict[Tuple[bytes, bool], Capability] = {}
        self._perf = False
        try:
            from repro import perf as _perf
            self._perf = _perf.enabled()
        except ImportError:  # pragma: no cover - bootstrap ordering
            pass

    def _meta_id(self, cap: Capability) -> int:
        key = (cap.base, cap.length, int(cap.perms), cap.otype)
        meta_id = self._meta_to_id.get(key)
        if meta_id is None:
            meta_id = len(self._meta_to_id) + 1
            self._meta_to_id[key] = meta_id
            self._id_to_meta[meta_id] = key
        return meta_id

    def encode(self, cap: Capability) -> bytes:
        """Pack a capability into its 16-byte memory representation."""
        if self._perf:
            key = (cap.cursor, cap.base, cap.length, int(cap.perms),
                   cap.otype)
            raw = self._encode_memo.get(key)
            if raw is not None:
                return raw
            raw = _META_STRUCT.pack(
                cap.cursor & (2**64 - 1), self._meta_id(cap)
            )
            if len(self._encode_memo) >= _MEMO_CAP:
                self._encode_memo.clear()
            self._encode_memo[key] = raw
            return raw
        return _META_STRUCT.pack(
            cap.cursor & (2**64 - 1), self._meta_id(cap)
        )

    def decode(self, raw: bytes, valid: bool) -> Capability:
        """Unpack a 16-byte granule.

        ``valid`` is the granule's tag bit: an untagged granule decodes
        to an *invalid* capability (unusable), mirroring hardware where
        loading untagged bytes into a capability register yields a value
        that faults on use.
        """
        if self._perf:
            memo_key = (raw, valid)
            cached = self._decode_memo.get(memo_key)
            if cached is not None:
                return cached
        if len(raw) != CAP_SIZE:
            raise ValueError(f"capability granule must be {CAP_SIZE} bytes")
        cursor, meta_id = _META_STRUCT.unpack(raw)
        meta = self._id_to_meta.get(meta_id)
        if meta is None:
            # Forged / garbage metadata: an invalid null-ish capability.
            # NOT memoised — interning could later claim this meta id.
            return Capability(
                base=0, length=0, cursor=cursor, perms=Perm.NONE, valid=False
            )
        base, length, perms, otype = meta
        if self._perf:
            cap = _fast_cap(base, length, cursor, Perm(perms), otype, valid)
            if len(self._decode_memo) >= _MEMO_CAP:
                self._decode_memo.clear()
            self._decode_memo[memo_key] = cap
            return cap
        return Capability(
            base=base,
            length=length,
            cursor=cursor,
            perms=Perm(perms),
            otype=otype,
            valid=valid,
        )

"""Injected fault types and the injection-point catalog.

Every fault ``repro.chaos`` can inject is declared here, twice over:

* an **exception type** mixing in :class:`InjectedFault`, so survival
  machinery (the syscall retry loop, the fork transaction) can tell an
  injected fault from a genuine one and never masks real kernel errors;
* an **injection point**: a named, documented place in the stack where
  the engine may fire.  Point names follow the same
  ``layer.component.event`` contract as metric names
  (docs/OBSERVABILITY.md) with the first segment restricted to the
  layer packages that host injection sites — which is what makes every
  chaos counter (``chaos.injected.<point>``) self-describing.

The catalog is closed: :meth:`ChaosEngine.should_fire` rejects
unregistered names, so a typo at an instrumentation site fails loudly
instead of silently never firing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import Interrupted, KernelError, OutOfMemory, WouldBlock

#: layers that may host injection sites (first name segment)
POINT_LAYERS = ("hw", "kernel", "core", "smp", "sec")


class InjectedFault:
    """Marker mixin for every chaos-injected exception.

    ``retriable`` is True only when the raise site guarantees no kernel
    state was mutated (or a transaction already rolled it back), so the
    syscall layer may safely re-run the handler.
    """

    injected = True
    retriable = False


class InjectedInterrupt(Interrupted, InjectedFault):
    """Injected EINTR at syscall entry (before any handler work)."""

    retriable = True


class InjectedWouldBlock(WouldBlock, InjectedFault):
    """Injected EAGAIN at syscall entry."""

    retriable = True


class InjectedSyscallNoMem(OutOfMemory, InjectedFault):
    """Injected ENOMEM at syscall entry (a transient reclaim stall)."""

    retriable = True


class InjectedAllocFailure(OutOfMemory, InjectedFault):
    """Injected frame-allocation exhaustion deep inside a handler.

    Not retriable on its own: the handler may have partial side
    effects.  Paths that roll back (the fork transaction) re-raise it
    as :class:`InjectedForkFailure`, which is.
    """


class InjectedForkFailure(KernelError, InjectedFault):
    """A fork died mid-flight and was fully rolled back (EAGAIN)."""

    errno_name = "EAGAIN"
    retriable = True


class InjectedRestoreFailure(KernelError, InjectedFault):
    """A snapshot restore died mid-flight and was fully rolled back.

    Like :class:`InjectedForkFailure`, the restore transaction releases
    every frame, PTE, PID and fd the partial restore had claimed before
    this is raised, so the caller may simply retry the restore."""

    errno_name = "EAGAIN"
    retriable = True


# ---------------------------------------------------------------------------
# The injection-point catalog
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class InjectionPoint:
    """One named place where the engine may fire."""

    name: str
    description: str

    @property
    def layer(self) -> str:
        return self.name.split(".", 1)[0]


INJECTION_POINTS: Dict[str, InjectionPoint] = {}


def check_point_name(name: str) -> str:
    """Validate an injection-point name against the naming contract."""
    from repro.obs import check_metric_name
    check_metric_name(name)
    layer = name.split(".", 1)[0]
    if layer not in POINT_LAYERS:
        raise ValueError(
            f"injection point {name!r} must start with one of "
            f"{POINT_LAYERS} (the layer hosting the site)"
        )
    return name


def register_point(name: str, description: str) -> InjectionPoint:
    """Register an injection point (idempotent for identical entries)."""
    check_point_name(name)
    existing = INJECTION_POINTS.get(name)
    if existing is not None:
        if existing.description != description:
            raise ValueError(f"injection point {name!r} already registered "
                             f"with a different description")
        return existing
    point = InjectionPoint(name, description)
    INJECTION_POINTS[name] = point
    return point


register_point(
    "hw.phys.alloc_fail",
    "frame allocation fails as if physical memory were exhausted "
    "(raises InjectedAllocFailure from PhysicalMemory.alloc)")
register_point(
    "hw.phys.tag_clear",
    "a tag-preserving frame copy spuriously loses its validity tags "
    "(the kernel's verify-after-copy detects it and redoes the copy)")
register_point(
    "hw.tlb.shootdown_loss",
    "a TLB shootdown IPI is lost; the ack timeout re-issues the flush")
register_point(
    "kernel.syscall.eintr",
    "syscall entry is interrupted (EINTR) before the handler runs")
register_point(
    "kernel.syscall.enomem",
    "syscall entry fails with a transient ENOMEM before the handler runs")
register_point(
    "kernel.syscall.eagain",
    "syscall entry fails with a transient EAGAIN before the handler runs")
register_point(
    "kernel.sched.preempt",
    "forced preemption at the kernel boundary: the scheduler switches "
    "to the next runnable task before the handler runs")
register_point(
    "kernel.ipc.short_write",
    "a pipe write transfers only half of the bytes it had room for")
register_point(
    "kernel.net.short_send",
    "a socket send transfers only half of the submitted bytes")
register_point(
    "core.ufork.abort.reserve",
    "fork dies right after reserving the child's VA area")
register_point(
    "core.ufork.abort.copy_pages",
    "fork dies after the page-duplication phase (relocation failure)")
register_point(
    "core.ufork.abort.registers",
    "fork dies after register relocation")
register_point(
    "core.ufork.abort.allocator",
    "fork dies after allocator handoff, just before the child is "
    "published")
register_point(
    "core.snapshot.abort.reserve",
    "restore dies right after reserving the new μprocess's VA area")
register_point(
    "core.snapshot.abort.pages",
    "restore dies after materialising the snapshot's pages")
register_point(
    "core.snapshot.abort.registers",
    "restore dies after re-minting the register file")
register_point(
    "core.snapshot.abort.allocator",
    "restore dies after allocator re-attachment, just before the "
    "restored μprocess is published")
register_point(
    "core.strategies.cap_fault_storm",
    "a CoPA capability-load break is hit by a storm of spurious "
    "repeat faults before it sticks (feeds strategy degradation)")
register_point(
    "smp.ipi.drop",
    "an IPI is dropped in flight; the sender's ack timeout expires and "
    "the interrupt is re-sent (the retry always lands)")
register_point(
    "smp.steal.abort",
    "a work-steal attempt aborts as if the victim queue's lock were "
    "contended; the stealing CPU stays idle this round")
register_point(
    "smp.tlb.stale_storm",
    "a shootdown recipient observes a storm of stale translations and "
    "must invalidate twice before the flush sticks")
register_point(
    "sec.attack.replay",
    "the adversarial guest immediately replays a just-defeated attack; "
    "the second attempt must end in the identical fault")
register_point(
    "sec.attack.bystander_fork",
    "a bystander μprocess forks and exits mid-attack, racing the "
    "attempt against concurrent capability relocation")
register_point(
    "sec.snapshot.bitflip",
    "a tampered snapshot blob takes one extra deterministic payload "
    "bit-flip before the restore attempt")

"""The minimal "hello world" program used by the Fig 8 microbenchmark.

A tiny image (small heap, small stack); its run body does a trivial
amount of work, stores a greeting on its heap, and exits — enough to
verify the child is a working process without dominating fork cost.
"""

from __future__ import annotations

from typing import Any

from repro.mem.layout import KiB, ProgramImage

GREETING = b"hello, single address space!"


def hello_world_image() -> ProgramImage:
    """A minimal static binary."""
    return ProgramImage(
        name="hello",
        code_size=16 * KiB,
        rodata_size=4 * KiB,
        data_size=4 * KiB,
        got_entries=64,
        tls_size=4 * KiB,
        heap_size=64 * KiB,
        mmap_size=16 * KiB,
        stack_size=32 * KiB,
    )


def run_hello(ctx: Any) -> bytes:
    """The program body: allocate, write, read back, return the bytes."""
    buf = ctx.malloc(64)
    ctx.store(buf, GREETING)
    ctx.compute(500)  # a few hundred ns of "work"
    return ctx.load(buf, len(GREETING))

"""VMCloneOS: the Nephele-like "OS-as-a-process" baseline.

Nephele (EuroSys '23) supports fork in a unikernel by treating the
whole VM as the process: the hypervisor clones the entire guest — a new
Xen domain is created, guest memory is duplicated, devices reattached.
That makes fork correct but heavy: the paper measures 10.7 ms per fork
and 1.6 MB per minimal process (Fig 8), orders of magnitude above
μFork.

Mechanistic model: each process is a VM whose address space contains
the program image *plus the unikernel kernel pages* (everything gets
cloned); fork pays a fixed domain-creation cost, hypercalls, and a
per-page duplication cost over the whole guest.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.cheri.capability import Capability, Perm
from repro.core.uprocess import (
    init_image_contents,
    initial_registers,
    make_heap_allocator,
    map_image_segments,
)
from repro.hw.paging import AddressSpace, PagePerm
from repro.kernel.base import AbstractOS
from repro.kernel.fdtable import FDTable
from repro.kernel.syscalls import IsolationConfig
from repro.kernel.task import Process
from repro.machine import Machine
from repro.mem.layout import KiB, MiB, ProgramImage, SegmentMap

#: guest VA where the unikernel image is loaded in every VM
GUEST_BASE = 0x0000_0000_0040_0000

#: unikernel kernel image + runtime state cloned with every VM
GUEST_KERNEL_BYTES = int(1.4 * MiB)


class VMCloneOS(AbstractOS):
    """Nephele-like hypervisor-fork baseline."""

    kind = "nephele"

    #: per-domain hypervisor bookkeeping (domain struct, grant tables)
    KERNEL_PROC_OVERHEAD = 64 * KiB

    def __init__(self, machine: Optional[Machine] = None,
                 isolation: Optional[IsolationConfig] = None) -> None:
        super().__init__(
            machine=machine,
            # the guest is a unikernel: same-EL, cheap internal syscalls
            trapless_syscalls=True,
            isolation=isolation or IsolationConfig.fault(),
            same_address_space=False,  # one address space *per VM*
        )
        self.kernel_root = Capability.root(self.machine.config.va_size)
        self.syscall_gate = None

    # ------------------------------------------------------------------
    # AbstractOS interface
    # ------------------------------------------------------------------

    def space_of(self, proc: Process) -> AddressSpace:
        return proc.space

    def spawn(self, image: ProgramImage, name: str) -> Process:
        machine = self.machine
        page = machine.config.page_size

        space = AddressSpace(machine, f"vm-{name}")
        layout = SegmentMap(image, GUEST_BASE, page)

        proc = Process(self.pids.allocate(), name)
        proc.space = space
        proc.layout = layout
        proc.fdtable = FDTable()

        map_image_segments(machine, space, layout)
        kernel_top = self._map_guest_kernel(space, layout.region_top)
        proc.region_base = layout.region_base
        proc.region_top = kernel_top

        region_cap = (
            self.kernel_root
            .set_bounds(layout.region_base,
                        kernel_top - layout.region_base)
            .without_perms(Perm.SEAL | Perm.UNSEAL)
            .with_cursor(layout.region_base)
        )
        init_image_contents(machine, space, layout, region_cap)
        proc.allocator = make_heap_allocator(machine, space, layout,
                                             region_cap)

        task = proc.add_task()
        for reg_name, value in initial_registers(layout, region_cap).items():
            task.registers.set(reg_name, value)
        self.procs.add(proc)
        self.sched.add(task)
        return proc

    def _map_guest_kernel(self, space: AddressSpace, base: int) -> int:
        """The unikernel's own pages — cloned along with the app."""
        machine = self.machine
        page = machine.config.page_size
        pages = (GUEST_KERNEL_BYTES + page - 1) // page
        vpn = base // page
        for _ in range(pages):
            frame = machine.phys.alloc(zero=True, charge=False)
            space.map_page(vpn, frame, PagePerm.rwc())
            vpn += 1
        return vpn * page

    # ------------------------------------------------------------------
    # fork = clone the whole VM in the hypervisor
    # ------------------------------------------------------------------

    def fork(self, proc: Process) -> Process:
        """Clone the whole VM.  Observability: phases run inside
        ``domain_create`` / ``clone_pages`` / ``registers`` /
        ``allocator`` spans under the caller's ``syscall.fork`` span."""
        machine = self.machine
        costs = machine.costs
        obs = machine.obs
        with obs.span("domain_create"):
            # domain creation: the dominant, size-independent cost
            machine.charge(costs.vm_clone_fixed_ns, "vm_clone_fixed")
            # a handful of hypercalls for console/device/grant plumbing
            for _ in range(6):
                machine.charge(costs.hypercall_ns, "hypercall")

        child = Process(self.pids.allocate(), proc.name, parent=proc)
        child.layout = proc.layout
        child.region_base = proc.region_base
        child.region_top = proc.region_top
        child.fdtable = proc.fdtable.fork_copy(machine)
        from repro.kernel import signals as _signals
        child.signal_state = _signals.signal_state(proc).fork_copy()

        child_space = AddressSpace(machine, f"vm-{proc.name}-{child.pid}")
        with obs.span("clone_pages"):
            for vpn, pte in proc.space.page_table.entries():
                machine.charge(costs.vm_clone_page_ns, "vm_clone_page")
                new_frame = machine.phys.copy_frame(pte.frame,
                                                    preserve_tags=True,
                                                    charge=False)
                child_space.map_page(vpn, new_frame, pte.perms)
        child.space = child_space

        # same guest VA in the clone: registers copy verbatim
        task = child.add_task()
        with obs.span("registers"):
            for name, value in proc.main_task().registers.items():
                task.registers.set(name, value)

        with obs.span("allocator"):
            child.allocator = type(proc.allocator)(
                machine, child_space, proc.allocator.heap_cap,
                max_blocks=proc.allocator.max_blocks,
            )
            child.allocator.attach_lazy()

        self.procs.add(child)
        self.sched.add(task)
        machine.counters.add("fork")
        obs.count("baselines.vmclone.forks")
        return child

    # ------------------------------------------------------------------
    # Exit / metrics
    # ------------------------------------------------------------------

    def _teardown_memory(self, proc: Process) -> None:
        machine = self.machine
        # destroying the domain is hypervisor work
        machine.charge(machine.costs.hypercall_ns * 4, "exit")
        machine.charge(machine.costs.monolithic_exit_ns, "exit")
        for vpn in list(proc.space.page_table.vpns()):
            proc.space.unmap_page(vpn)

    def memory_of(self, proc: Process) -> float:
        """A cloned VM shares nothing: its whole guest memory counts."""
        return (
            proc.space.resident_bytes(0, self.machine.config.va_size,
                                      proportional=True)
            + self.KERNEL_PROC_OVERHEAD
        )

    def private_bytes(self, proc: Process) -> int:
        page = self.machine.config.page_size
        return sum(
            page for _vpn, pte in proc.space.page_table.entries()
            if self.machine.phys.refcount(pte.frame) == 1
        )

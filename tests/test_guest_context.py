"""Tests for GuestContext — the user-space programming API."""

import pytest

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.cheri.capability import Perm
from repro.core import UForkOS
from repro.errors import BoundsFault, PermissionFault, TagFault
from repro.machine import Machine


@pytest.fixture
def ctx():
    os_ = UForkOS(machine=Machine())
    return GuestContext(os_, os_.spawn(hello_world_image(), "app"))


class TestMemoryAccess:
    def test_store_load_with_offset(self, ctx):
        buf = ctx.malloc(64)
        ctx.store(buf, b"abc", offset=10)
        assert ctx.load(buf, 3, offset=10) == b"abc"

    def test_u64_helpers(self, ctx):
        buf = ctx.malloc(16)
        ctx.store_u64(buf, 0xDEADBEEF, offset=8)
        assert ctx.load_u64(buf, offset=8) == 0xDEADBEEF

    def test_out_of_bounds_store_faults(self, ctx):
        buf = ctx.malloc(16)
        with pytest.raises(BoundsFault):
            ctx.store(buf, b"x" * 17)

    def test_offset_past_end_faults(self, ctx):
        buf = ctx.malloc(16)
        with pytest.raises(BoundsFault):
            ctx.load(buf, 8, offset=12)

    def test_readonly_cap_cannot_store(self, ctx):
        buf = ctx.malloc(16).and_perms(Perm.data_ro())
        with pytest.raises(PermissionFault):
            ctx.store(buf, b"x")

    def test_untagged_cap_unusable(self, ctx):
        buf = ctx.malloc(16).invalidated()
        with pytest.raises(TagFault):
            ctx.load(buf, 1)

    def test_cap_store_load_roundtrip(self, ctx):
        holder = ctx.malloc(32)
        target = ctx.malloc(16)
        ctx.store_cap(holder, target, offset=16)
        loaded = ctx.load_cap(holder, offset=16)
        assert loaded.base == target.base
        assert loaded.valid

    def test_overwriting_cap_with_data_clears_tag(self, ctx):
        holder = ctx.malloc(32)
        ctx.store_cap(holder, ctx.malloc(16))
        ctx.store(holder, b"junk")  # clears the tag
        assert not ctx.load_cap(holder).valid


class TestComputeAndRegisters:
    def test_compute_charges_time(self, ctx):
        before = ctx.os.machine.clock.now_ns
        ctx.compute(1234)
        assert ctx.os.machine.clock.now_ns - before == 1234

    def test_register_roundtrip(self, ctx):
        buf = ctx.malloc(16)
        ctx.set_reg("c20", buf)
        assert ctx.reg("c20") is buf

    def test_pid_property(self, ctx):
        assert ctx.pid == ctx.proc.pid


class TestByteHelpers:
    def test_write_read_bytes_roundtrip(self, ctx):
        from repro.kernel.vfs import O_CREAT, O_RDONLY, O_RDWR
        fd = ctx.syscall("open", "/f", O_CREAT | O_RDWR)
        payload = bytes(range(256)) * 40  # larger than tiny staging
        assert ctx.write_bytes(fd, payload) == len(payload)
        ctx.syscall("close", fd)
        fd = ctx.syscall("open", "/f", O_RDONLY)
        assert ctx.read_bytes(fd, len(payload)) == payload

    def test_staging_buffer_reused(self, ctx):
        from repro.kernel.vfs import O_CREAT, O_WRONLY
        fd = ctx.syscall("open", "/f", O_CREAT | O_WRONLY)
        blocks_before = None
        ctx.write_bytes(fd, b"x")
        blocks_before = ctx.proc.allocator.block_count()
        ctx.write_bytes(fd, b"y" * 1000)
        assert ctx.proc.allocator.block_count() == blocks_before

    def test_send_recv_bytes(self, ctx):
        server_fd = ctx.syscall("listen", 8080)
        client = GuestContext(ctx.os, ctx.os.spawn(hello_world_image(),
                                                   "client"))
        conn_fd = client.syscall("connect", 8080)
        client.send_bytes(conn_fd, b"request")
        accepted_fd = ctx.syscall("accept", server_fd)
        assert ctx.recv_bytes(accepted_fd, 100) == b"request"

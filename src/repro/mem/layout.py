"""μprocess memory layout (paper §3.7, Figure 1).

Every μprocess occupies one *contiguous* area of the single virtual
address space, which is what lets CHERI's contiguous-bounds capabilities
confine it cheaply.  Within the area the segments follow the classic
PIC/PIE layout: code, read-only data, writable data, GOT, TLS, heap,
and a stack at the top.

A :class:`ProgramImage` describes segment sizes for a program (the
build-time view); a :class:`SegmentMap` is that image resolved against a
concrete region base address (the loaded view).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.cheri.capability import Perm
from repro.hw.paging import PagePerm

KiB = 1024
MiB = 1024 * KiB


@dataclass(frozen=True)
class SegmentSpec:
    """One segment of a program image."""

    name: str
    size: int
    page_perms: PagePerm
    cap_perms: Perm
    #: segments whose initial content includes capabilities (GOT, data
    #: with pointer globals); μFork must eagerly copy + relocate these
    holds_caps: bool = False


@dataclass(frozen=True)
class ProgramImage:
    """Build-time description of a program: segment sizes.

    ``heap_size`` is the build-time-configurable static heap of §4.2;
    ``got_entries`` models the global offset table PIC code indirects
    through (16 bytes per entry, one page minimum).
    """

    name: str
    code_size: int = 64 * KiB
    rodata_size: int = 16 * KiB
    data_size: int = 16 * KiB
    got_entries: int = 128
    tls_size: int = 4 * KiB
    heap_size: int = 1 * MiB
    #: demand window for anonymous mmap / shared-memory mappings; pages
    #: are mapped on request, not at load
    mmap_size: int = 256 * KiB
    stack_size: int = 64 * KiB
    #: names of shared libraries to map at load (§3.7); each occupies
    #: part of the mmap window with machine-wide shared frames
    shared_libs: tuple = ()
    #: when set, only this many bytes of the heap are mapped at load and
    #: the rest is demand-zero paged — the "dynamic heaps" alternative
    #: the paper's modular prototype allows (§4.2, R4).  ``None`` keeps
    #: the paper's default: a fully mapped static heap.
    heap_initial: int = None

    @property
    def got_size(self) -> int:
        return max(4 * KiB, self.got_entries * 16)

    def segments(self) -> List[SegmentSpec]:
        return [
            SegmentSpec("code", self.code_size, PagePerm.rx(), Perm.code()),
            SegmentSpec("rodata", self.rodata_size, PagePerm.read_only(),
                        Perm.data_ro()),
            SegmentSpec("data", self.data_size, PagePerm.rwc(),
                        Perm.data_rw(), holds_caps=True),
            SegmentSpec("got", self.got_size, PagePerm.rwc(),
                        Perm.data_rw(), holds_caps=True),
            SegmentSpec("tls", self.tls_size, PagePerm.rwc(), Perm.data_rw()),
            SegmentSpec("heap", self.heap_size, PagePerm.rwc(),
                        Perm.data_rw(), holds_caps=True),
            SegmentSpec("mmap", self.mmap_size, PagePerm.rwc(),
                        Perm.data_rw(), holds_caps=True),
            SegmentSpec("stack", self.stack_size, PagePerm.rwc(),
                        Perm.data_rw(), holds_caps=True),
        ]

    def region_size(self, page_size: int) -> int:
        """Total contiguous VA the loaded μprocess needs."""
        total = 0
        for segment in self.segments():
            total += _page_align(segment.size, page_size)
        return total


def _page_align(value: int, page_size: int) -> int:
    return (value + page_size - 1) // page_size * page_size


@dataclass
class SegmentMap:
    """A :class:`ProgramImage` resolved against a region base address."""

    image: ProgramImage
    region_base: int
    page_size: int
    _spans: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        cursor = self.region_base
        for segment in self.image.segments():
            size = _page_align(segment.size, self.page_size)
            self._spans[segment.name] = (cursor, size)
            cursor += size
        self.region_top = cursor

    @property
    def region_size(self) -> int:
        return self.region_top - self.region_base

    def base(self, name: str) -> int:
        return self._spans[name][0]

    def size(self, name: str) -> int:
        return self._spans[name][1]

    def top(self, name: str) -> int:
        base, size = self._spans[name]
        return base + size

    def span(self, name: str) -> Tuple[int, int]:
        """(base, top) of a segment."""
        base, size = self._spans[name]
        return base, base + size

    def segment_of(self, vaddr: int) -> str:
        for name, (base, size) in self._spans.items():
            if base <= vaddr < base + size:
                return name
        raise KeyError(f"address {vaddr:#x} outside region")

    def contains(self, vaddr: int) -> bool:
        return self.region_base <= vaddr < self.region_top

    def iter_segments(self) -> Iterator[Tuple[SegmentSpec, int, int]]:
        """Yield (spec, base, size) for every segment."""
        for spec in self.image.segments():
            base, size = self._spans[spec.name]
            yield spec, base, size

    def rebased(self, new_base: int) -> "SegmentMap":
        """The same layout at a different region base (the child's view
        after μFork)."""
        return SegmentMap(self.image, new_base, self.page_size)

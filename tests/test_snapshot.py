"""repro.snapshot acceptance tier: checkpoint at a syscall boundary,
restore into a *fresh* machine, and the restored μprocess's logical
trace is identical to the uninterrupted run — for every fork strategy
(the three SASOS strategies plus the monolithic baseline) at 1, 2 and
4 CPUs.  Plus: blob determinism, incremental capture, v1 gates."""

import pytest

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.baselines.monolithic import MonolithicOS
from repro.core import CopyStrategy, UForkOS
from repro.kernel import signals
from repro.machine import Machine
from repro.snapshot import (
    SCHEMA,
    SnapshotError,
    checkpoint,
    decode,
    restore,
    restore_into,
)

STRATEGIES = ["full", "coa", "copa", "monolithic"]


def boot(strategy, num_cpus=1, seed=7):
    machine = Machine(seed=seed, num_cpus=num_cpus)
    if strategy == "monolithic":
        os_ = MonolithicOS(machine=machine)
    else:
        os_ = UForkOS(machine=machine,
                      copy_strategy=CopyStrategy(strategy))
    ctx = GuestContext(os_, os_.spawn(hello_world_image(), "app"))
    return os_, ctx


def prologue(ctx):
    """Build up state worth snapshotting: heap data, a capability stored
    in memory, a capability parked in a register, a pipe with buffered
    bytes (fds parked in integer registers), a non-default signal
    disposition, and a pending signal."""
    cap = ctx.malloc(256)
    ctx.store(cap, b"snapshot me " + bytes(range(16)))
    ctx.store_cap(cap, cap.add(64), offset=96)
    ctx.set_reg("c19", cap)
    rfd, wfd = ctx.syscall("pipe")
    ctx.set_reg("x20", rfd)
    ctx.set_reg("x21", wfd)
    ctx.write_bytes(wfd, b"buffered-in-pipe")
    ctx.syscall("signal", signals.SIGUSR1, signals.SIG_IGN)
    # queued but undelivered at the checkpoint boundary
    ctx.syscall("kill", ctx.proc.pid, signals.SIGUSR1)


def epilogue(ctx):
    """Continue the program purely through snapshotted state (registers
    carry the capabilities/fds), recording a *logical* trace: data
    bytes, capability geometry relative to the region, exit statuses —
    never absolute addresses, pids or clock values."""
    trace = []
    cap = ctx.reg("c19")
    trace.append(("heap", ctx.load(cap, 28)))
    inner = ctx.load_cap(cap, offset=96)
    trace.append(("inner", inner.offset, inner.length, int(inner.perms),
                  inner.valid, inner.cursor - cap.cursor))
    extra = ctx.malloc(512)
    ctx.store(extra, b"post-restore")
    trace.append(("extra", ctx.load(extra, 12)))
    ctx.free(extra)
    rfd, wfd = ctx.reg("x20"), ctx.reg("x21")
    got = ctx.syscall("read", rfd, cap.add(128), 16)
    trace.append(("pipe", got, ctx.load(cap, got, offset=128)))
    wrote = ctx.syscall("write", wfd, cap, 8)
    trace.append(("pipe_wr", wrote))
    # the ignored disposition survived: this kill must not terminate us
    ctx.syscall("kill", ctx.proc.pid, signals.SIGUSR1)
    trace.append(("alive", ctx.proc.alive))
    child = ctx.fork()
    ccap = child.reg("c19")
    trace.append(("child_heap", child.load(ccap, 28)))
    cinner = child.load_cap(ccap, offset=96)
    trace.append(("child_inner", cinner.offset, cinner.length,
                  cinner.valid))
    child.exit(0)
    _pid, status = ctx.wait(child.proc.pid)
    trace.append(("wait", status))
    ctx.exit(0)
    return trace


@pytest.mark.parametrize("num_cpus", [1, 2, 4])
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_restore_trace_identical_to_uninterrupted_run(strategy, num_cpus):
    # the uninterrupted twin
    _os_a, ctx_a = boot(strategy, num_cpus=num_cpus)
    prologue(ctx_a)
    expected = epilogue(ctx_a)

    # checkpoint on one machine, restore into a freshly booted one
    os_b, ctx_b = boot(strategy, num_cpus=num_cpus)
    prologue(ctx_b)
    blob = checkpoint(os_b, ctx_b.proc)
    ctx_b.exit(0)

    os_c, boot_ctx = boot(strategy, num_cpus=num_cpus)
    restored = restore(os_c, blob)
    ctx_c = GuestContext(os_c, restored)
    assert epilogue(ctx_c) == expected
    boot_ctx.exit(0)


def test_restore_onto_the_checkpointing_machine():
    os_, ctx = boot("copa")
    prologue(ctx)
    expected_pages = decode(checkpoint(os_, ctx.proc))[0]["pages"]
    blob = checkpoint(os_, ctx.proc)
    ctx.exit(0)
    restored = restore(os_, blob)
    trace = epilogue(GuestContext(os_, restored))
    assert ("alive", True) in trace
    assert len(expected_pages) > 0


def test_blob_is_deterministic_across_same_seed_runs():
    blobs = []
    for _ in range(2):
        os_, ctx = boot("copa", seed=11)
        prologue(ctx)
        blobs.append(checkpoint(os_, ctx.proc))
        ctx.exit(0)
    assert blobs[0] == blobs[1]
    manifest, payload = decode(blobs[0])
    assert manifest["schema"] == SCHEMA
    assert manifest["os"] == "ufork"
    assert len(payload) == len(manifest["pages"]) * manifest["page_size"]


def test_capabilities_are_recorded_logically():
    """Every tagged granule appears in the manifest with its logical
    fields; the register file records the parked capability."""
    os_, ctx = boot("copa")
    prologue(ctx)
    manifest, _payload = decode(checkpoint(os_, ctx.proc))
    all_caps = [c for page in manifest["pages"] for c in page["caps"]]
    assert all_caps, "GOT + stored caps must appear as tagged granules"
    for _off, base, length, _cursor, perms, _otype in all_caps:
        assert ctx.proc.region_base <= base < ctx.proc.region_top
        assert length >= 0 and perms >= 0
    regs = {r[0]: r for r in manifest["registers"]}
    assert regs["c19"][1] == "cap"
    assert regs["x20"][1] == "int"
    ctx.exit(0)


def test_incremental_captures_only_divergent_pages():
    """After a fork, an incremental snapshot of the child holds exactly
    its refcount-1 (CoW-divergent) pages — and never resolves the
    still-shared rest."""
    os_, ctx = boot("copa")
    prologue(ctx)
    child = ctx.fork()
    page = os_.machine.config.page_size
    # diverge two heap pages in the child
    ccap = child.reg("c19")
    child.store(ccap, b"diverged!")
    blob = checkpoint(os_, child.proc, incremental=True)
    manifest, _ = decode(blob)
    assert manifest["incremental"] is True
    expected = {
        vpn for vpn in range(child.proc.region_base // page,
                             child.proc.region_top // page)
        if (pte := os_.space.page_table.get(vpn)) is not None
        and os_.machine.phys.refcount(pte.frame) == 1
    }
    assert {p["vpn"] for p in manifest["pages"]} == expected
    assert 0 < len(expected) < (child.proc.region_size // page)
    with pytest.raises(SnapshotError):
        restore(os_, blob)  # incremental blobs need restore_into
    child.exit(0)
    ctx.wait(child.proc.pid)
    ctx.exit(0)


def test_restore_into_applies_divergence_onto_a_fork_twin():
    """Cluster-migration shape: checkpoint a worker's divergence, fork a
    twin from the same zygote elsewhere, apply — the twin now computes
    exactly what the worker would have."""
    os_a, zyg_a = boot("copa", seed=3)
    prologue(zyg_a)
    worker = zyg_a.fork()
    wcap = worker.reg("c19")
    worker.store(wcap, b"worker state 42!")
    blob = checkpoint(os_a, worker.proc, incremental=True)
    worker.exit(0)
    zyg_a.wait(worker.proc.pid)
    zyg_a.exit(0)

    os_b, zyg_b = boot("copa", seed=3)
    prologue(zyg_b)
    twin = zyg_b.fork()
    applied = restore_into(os_b, twin.proc, blob)
    assert applied == len(decode(blob)[0]["pages"]) > 0
    tcap = twin.reg("c19")
    assert twin.load(tcap, 16) == b"worker state 42!"
    twin.exit(0)
    zyg_b.wait(twin.proc.pid)
    zyg_b.exit(0)


def test_restore_with_parent_is_waitable():
    os_, ctx = boot("copa")
    prologue(ctx)
    blob = checkpoint(os_, ctx.proc)
    adopted = restore(os_, blob, name="adopted", parent=ctx.proc)
    assert adopted.parent is ctx.proc and adopted in ctx.proc.children
    GuestContext(os_, adopted).exit(0)
    _pid, status = ctx.wait(adopted.pid)
    assert status == 0
    ctx.exit(0)


def test_non_pipe_fds_are_dropped_by_policy():
    from repro.kernel.vfs import O_CREAT, O_RDWR
    os_, ctx = boot("copa")
    os_.machine.obs.enable()
    fd = ctx.syscall("open", "/keep", O_CREAT | O_RDWR)
    blob = checkpoint(os_, ctx.proc)
    manifest, _ = decode(blob)
    kinds = {entry[0]: entry[1] for entry in manifest["fds"]}
    assert kinds[fd] == "dropped"
    restored = restore(os_, blob)
    assert fd not in restored.fdtable
    counters = os_.machine.obs.registry.counters()
    assert counters["core.snapshot.dropped_fds"] == 1
    GuestContext(os_, restored).exit(0)
    ctx.exit(0)


def test_v1_gates_multithreaded_and_shared_memory():
    os_, ctx = boot("copa")
    ctx.syscall("thread_create")
    with pytest.raises(SnapshotError):
        checkpoint(os_, ctx.proc)

    os2, ctx2 = boot("copa")
    shm = ctx2.syscall("shm_open", "/seg", 2)
    ctx2.syscall("shm_map", shm)
    with pytest.raises(SnapshotError):
        checkpoint(os2, ctx2.proc)


def test_geometry_mismatch_is_rejected():
    from repro.params import CostModel, MachineConfig
    os_, ctx = boot("copa")
    blob = checkpoint(os_, ctx.proc)
    ctx.exit(0)
    other = Machine(config=MachineConfig(page_size=8192))
    target = UForkOS(machine=other, copy_strategy=CopyStrategy.COPA)
    with pytest.raises(SnapshotError):
        restore(target, blob)
    assert isinstance(CostModel.morello().snapshot_fixed_ns, float)


def test_restored_process_tears_down_cleanly():
    """Exit of a restored μprocess releases every frame and its VA
    reservation — restore grafts fully into the normal lifecycle."""
    os_, ctx = boot("copa")
    prologue(ctx)
    blob = checkpoint(os_, ctx.proc)
    ctx.exit(0)
    frames_before = os_.machine.phys.allocated_frames
    reserved_before = len(os_.vspace.reserved_areas())
    restored = restore(os_, blob)
    GuestContext(os_, restored).exit(0)
    assert os_.machine.phys.allocated_frames == frames_before
    assert len(os_.vspace.reserved_areas()) == reserved_before

"""Edge-semantics of the copy strategies (paper §3.8, Figure 2).

Each test pins one cell of the access × actor × strategy matrix:
which accesses share, which copy, and which relocate.
"""

import pytest

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.cheri.capability import Perm
from repro.cheri.regfile import DDC, PCC
from repro.core import CopyStrategy, UForkOS
from repro.hw.paging import AccessKind
from repro.machine import Machine


def forked_pair(strategy):
    """Parent with one pointer page and one data page, plus its child."""
    os_ = UForkOS(machine=Machine(), copy_strategy=strategy)
    parent = GuestContext(os_, os_.spawn(hello_world_image(), "p"))
    data = parent.malloc(4096)           # page(s) of plain bytes
    parent.store(data, b"d" * 4096)
    holder = parent.malloc(32)           # page with a capability
    parent.store_cap(holder, data)
    parent.set_reg("c9", holder)
    parent.set_reg("c8", data)
    child = parent.fork()
    return os_, parent, child


def copies(os_):
    return os_.machine.counters.get("fork_page_copies")


class TestCoPAMatrix:
    """Figure 2: writes by either side (A, C) and child pointer loads
    (B) trigger copying; everything else stays shared."""

    def test_child_plain_read_shares(self):
        os_, parent, child = forked_pair(CopyStrategy.COPA)
        before = copies(os_)
        child.load(child.reg("c8"), 64)   # data read via relocated reg
        assert copies(os_) == before

    def test_child_cap_load_copies_and_relocates(self):
        os_, parent, child = forked_pair(CopyStrategy.COPA)
        before = copies(os_)
        loaded = child.load_cap(child.reg("c9"))
        assert copies(os_) > before
        assert child.proc.region_base <= loaded.base \
            < child.proc.region_top

    def test_child_write_copies(self):
        os_, parent, child = forked_pair(CopyStrategy.COPA)
        before = copies(os_)
        child.store(child.reg("c8"), b"w")
        assert copies(os_) > before

    def test_parent_write_copies_for_writer(self):
        os_, parent, child = forked_pair(CopyStrategy.COPA)
        before = copies(os_)
        parent.store(parent.reg("c8"), b"w")
        assert copies(os_) > before
        # the child still reads the snapshot
        assert child.load(child.reg("c8"), 1) == b"d"

    def test_parent_cap_load_shares(self):
        """Parent pointers are already correct: no fault, no copy."""
        os_, parent, child = forked_pair(CopyStrategy.COPA)
        before = copies(os_)
        loaded = parent.load_cap(parent.reg("c9"))
        assert copies(os_) == before
        assert loaded.base == parent.reg("c8").base

    def test_child_exec_shares_code_pages(self):
        """PIC code is PC-relative: the child executes shared pages."""
        os_, parent, child = forked_pair(CopyStrategy.COPA)
        before = copies(os_)
        pcc = child.reg(PCC)
        pcc.check_access(Perm.EXECUTE)
        frame, _ = os_.space.resolve(pcc.cursor, AccessKind.EXEC)
        assert copies(os_) == before

    def test_each_shared_page_copies_at_most_once(self):
        os_, parent, child = forked_pair(CopyStrategy.COPA)
        target = child.reg("c9")
        child.load_cap(target)
        after_first = copies(os_)
        child.load_cap(target)      # second load: page already private
        child.store(target, b"\x00" * 16)
        assert copies(os_) == after_first


class TestCoAMatrix:
    """CoA: any child access copies; parent reads still share."""

    def test_child_plain_read_copies(self):
        os_, parent, child = forked_pair(CopyStrategy.COA)
        before = copies(os_)
        child.load(child.reg("c8"), 8)
        assert copies(os_) > before

    def test_child_exec_copies(self):
        os_, parent, child = forked_pair(CopyStrategy.COA)
        before = copies(os_)
        pcc = child.reg(PCC)
        os_.space.resolve(pcc.cursor, AccessKind.EXEC)
        assert copies(os_) > before

    def test_parent_read_shares(self):
        os_, parent, child = forked_pair(CopyStrategy.COA)
        before = copies(os_)
        parent.load(parent.reg("c8"), 8)
        parent.load_cap(parent.reg("c9"))
        assert copies(os_) == before

    def test_relocation_happens_on_copy(self):
        os_, parent, child = forked_pair(CopyStrategy.COA)
        loaded = child.load_cap(child.reg("c9"))
        assert child.proc.region_base <= loaded.base \
            < child.proc.region_top


class TestStaleCapabilityNeverUsable:
    """The §4.3 guarantee, stated negatively: no execution order lets
    the child dereference a parent-region capability."""

    @pytest.mark.parametrize("strategy",
                             [CopyStrategy.COA, CopyStrategy.COPA])
    def test_loaded_caps_always_point_into_child(self, strategy):
        os_, parent, child = forked_pair(strategy)
        # every capability reachable from the child's registers, after
        # arbitrary load ordering, lands in the child's region
        for first in ("c8", "c9"):
            loaded = child.reg(first)
            assert child.proc.region_base <= loaded.base \
                < child.proc.region_top
        via_memory = child.load_cap(child.reg("c9"))
        assert child.proc.region_base <= via_memory.base \
            < child.proc.region_top
        # and dereferencing it yields the snapshot, not parent bytes
        parent.store(parent.reg("c8"), b"MUT")
        assert child.load(via_memory, 3) == b"ddd"

"""repro.chaos — deterministic fault injection with survival paths.

μFork's claim is not "fork is fast" but "fork stays *correct* under
adversarial memory behaviour" — capability faults, CoW/CoA/CoPA breaks,
relocation mid-fork.  This package provokes exactly that, on a
reproducible schedule: a :class:`ChaosEngine` fires named injection
points across ``hw``, ``kernel`` and ``core`` from a single seed, and
the survival side (bounded syscall retry, CoPA→CoA→eager-copy
degradation, transactional fork rollback) absorbs the damage.

Every injection and recovery is recorded as a ``chaos.*`` counter in
``repro.obs``, and the engine's own export (``repro.chaos/v1``) lists
the exact injection schedule — any failure replays bit-identically
from its seed.  See docs/CHAOS.md for the contract, and
``python -m repro.harness chaos`` for the command-line harness.

The workload runner lives in :mod:`repro.chaos.runner` and is imported
lazily (it pulls in the whole OS stack); this package root stays
import-light so the kernel layers can depend on it.
"""

from repro.chaos.engine import (
    DEGRADE_AFTER,
    NULL_CHAOS,
    SCHEMA,
    ChaosEngine,
    FaultMix,
    NullChaos,
    deterministic_draw,
)
from repro.chaos.faults import (
    INJECTION_POINTS,
    InjectedAllocFailure,
    InjectedFault,
    InjectedForkFailure,
    InjectedInterrupt,
    InjectedRestoreFailure,
    InjectedSyscallNoMem,
    InjectedWouldBlock,
    InjectionPoint,
    check_point_name,
    register_point,
)
from repro.chaos.recovery import (
    RETRY_BACKOFF_BASE_NS,
    RETRY_MAX_ATTEMPTS,
    Transaction,
    is_retriable_injection,
    retry_syscall,
)

__all__ = [
    "ChaosEngine",
    "DEGRADE_AFTER",
    "FaultMix",
    "INJECTION_POINTS",
    "InjectedAllocFailure",
    "InjectedFault",
    "InjectedForkFailure",
    "InjectedInterrupt",
    "InjectedRestoreFailure",
    "InjectedSyscallNoMem",
    "InjectedWouldBlock",
    "InjectionPoint",
    "NULL_CHAOS",
    "NullChaos",
    "RETRY_BACKOFF_BASE_NS",
    "RETRY_MAX_ATTEMPTS",
    "SCHEMA",
    "Transaction",
    "check_point_name",
    "deterministic_draw",
    "is_retriable_injection",
    "register_point",
    "retry_syscall",
]

"""Memory-copy strategies: full copy, Copy-on-Access, Copy-on-Pointer-Access.

Traditional CoW cannot be applied as-is by μFork (§3.8): a page the
child merely *reads* may contain absolute memory references that still
point into the parent, so it must be copied and relocated before the
child can load them.  The three strategies the paper evaluates:

* ``FULL_COPY`` — copy + relocate every parent page synchronously at
  fork (the 23.2 ms / 144 MB upper bound in §5.2);
* ``COA`` — share pages but mark the child's mappings inaccessible:
  *any* child access (and any parent write) triggers copy + relocation;
* ``COPA`` — share pages read-only, using CHERI's fault-on-capability-
  load page bit: parent/child writes and child *capability loads*
  trigger copy + relocation, but plain data reads stay shared.

The strategies are implemented as fork-time page-table setup plus a
page-fault handler; the records live in PTE ``note`` slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, Optional, Tuple

from repro import perf as _perf
from repro.core.relocate import RegionPair, relocate_frame
from repro.hw.paging import AccessKind, AddressSpace, PagePerm, PTE


class CopyStrategy(Enum):
    """How a forked child's memory is materialized."""

    FULL_COPY = "full"
    COA = "coa"
    COPA = "copa"


@dataclass(slots=True)
class ShareNote:
    """PTE annotation for a page shared between parent and child."""

    #: "parent" or "child" — which side of the fork this PTE belongs to
    role: str
    strategy: CopyStrategy
    regions: RegionPair
    #: permissions to restore once the page becomes private
    orig_perms: PagePerm


#: share-permission memo: IntFlag arithmetic is pure but surprisingly
#: slow, and fork-time sharing runs it once per page; the handful of
#: distinct (strategy, perms) pairs makes a tiny permanent memo
_CHILD_PERMS_MEMO: Dict[Tuple[CopyStrategy, int], PagePerm] = {}
_PARENT_PERMS_MEMO: Dict[int, PagePerm] = {}


def child_share_perms(strategy: CopyStrategy,
                      orig_perms: PagePerm) -> PagePerm:
    """Page permissions for the child's mapping of a shared page."""
    if _perf.ENABLED:
        key = (strategy, int(orig_perms))
        cached = _CHILD_PERMS_MEMO.get(key)
        if cached is None:
            cached = _child_share_perms(strategy, orig_perms)
            _CHILD_PERMS_MEMO[key] = cached
        return cached
    return _child_share_perms(strategy, orig_perms)


def _child_share_perms(strategy: CopyStrategy,
                       orig_perms: PagePerm) -> PagePerm:
    if strategy is CopyStrategy.COA:
        # fully inaccessible: any access faults
        return PagePerm.NONE
    if strategy is CopyStrategy.COPA:
        # readable/executable, but no writes and no capability loads
        return orig_perms & ~(PagePerm.WRITE | PagePerm.LOAD_CAP)
    raise ValueError(f"no sharing under {strategy}")


def parent_share_perms(orig_perms: PagePerm) -> PagePerm:
    """Parent keeps reading (including its own capabilities) but writes
    must fault to preserve the child's snapshot."""
    if _perf.ENABLED:
        key = int(orig_perms)
        cached = _PARENT_PERMS_MEMO.get(key)
        if cached is None:
            cached = orig_perms & ~PagePerm.WRITE
            _PARENT_PERMS_MEMO[key] = cached
        return cached
    return orig_perms & ~PagePerm.WRITE


def _note_index(space: AddressSpace) -> Optional[set]:
    """The space's candidate set of vpns that may carry a ShareNote.

    Gated on the space's construction-time :mod:`repro.perf` snapshot.
    The set is an *over-approximation*: sites that clear a note without
    knowing its vpn (fork rollback, unmap) leave stale members behind,
    and :func:`iter_share_notes` re-validates and prunes every candidate
    — so audits see exactly the notes a full page-table scan would.
    """
    if not getattr(space, "_perf", False):
        return None
    index = getattr(space, "_share_note_vpns", None)
    if index is None:
        index = set()
        space._share_note_vpns = index
    return index


def setup_shared_page(space: AddressSpace, parent_vpn: int, child_vpn: int,
                      strategy: CopyStrategy, regions: RegionPair) -> None:
    """Fork-time setup for one page under CoA/CoPA."""
    machine = space.machine
    parent_pte = space.page_table.get(parent_vpn)
    orig = parent_pte.note.orig_perms if isinstance(parent_pte.note, ShareNote) \
        else parent_pte.perms

    # Child maps the parent's frame at the mirrored address.
    space.map_page(
        child_vpn, parent_pte.frame,
        child_share_perms(strategy, orig), incref=True,
        note=ShareNote("child", strategy, regions, orig),
    )
    machine.charge(machine.costs.pte_bulk_share_ns, "fork_map")
    if strategy is CopyStrategy.COA:
        machine.charge(machine.costs.pte_coa_extra_ns, "fork_map")

    # Parent loses write permission (lazily restored on its next write).
    parent_pte.perms = parent_share_perms(orig)
    if not isinstance(parent_pte.note, ShareNote):
        parent_pte.note = ShareNote("parent", strategy, regions, orig)
    machine.charge(machine.costs.pte_protect_ns, "fork_protect")

    index = _note_index(space)
    if index is not None:
        index.add(parent_vpn)
        index.add(child_vpn)


def copy_page_for_child(space: AddressSpace, child_vpn: int,
                        src_frame: int, perms: PagePerm,
                        regions: RegionPair,
                        map_new: bool = False) -> None:
    """Copy + relocate one page into the child (eager or on fault)."""
    machine = space.machine
    new_frame = machine.phys.copy_frame(src_frame, preserve_tags=True)
    relocate_frame(machine, machine.phys.frame(new_frame), regions)
    if map_new:
        space.map_page(child_vpn, new_frame, perms)
        machine.charge(machine.costs.pte_bulk_share_ns, "fork_map")
    else:
        space.replace_frame(child_vpn, new_frame)
        space.protect_page(child_vpn, perms)
    machine.counters.add("fork_page_copies")
    machine.obs.count("core.strategies.eager_page_copies" if map_new
                      else "core.strategies.fault_page_copies")
    machine.trace("fork_page_copy", vpn=child_vpn,
                  eager=map_new)


def handle_fork_fault(space: AddressSpace, vaddr: int,
                      kind: AccessKind) -> bool:
    """Page-fault handler implementing the lazy halves of CoA/CoPA.

    Returns True when the fault was a fork-sharing fault and has been
    resolved (the access should be retried).
    """
    machine = space.machine
    vpn = vaddr // machine.config.page_size
    pte = space.page_table.get(vpn)
    if pte is None or not isinstance(pte.note, ShareNote):
        return False
    note = pte.note

    if note.role == "parent":
        if kind is not AccessKind.WRITE:
            return False  # parent reads never fault under either strategy
        _make_private(space, vpn, pte, relocate=False, note=note)
        machine.counters.add("fork_parent_cow_break")
        machine.obs.count(
            f"core.strategies.{note.strategy.value}.break.parent.write")
        machine.trace("cow_break", role="parent", vpn=vpn)
        return True

    # child side: writes always break; reads/exec/cap-loads depend on strategy
    if note.strategy is CopyStrategy.COPA and kind is AccessKind.READ:
        return False  # CoPA allows plain reads; this fault is something else
    if kind is AccessKind.CAP_LOAD and machine.chaos.enabled and \
            machine.chaos.should_fire("core.strategies.cap_fault_storm"):
        # storm: the capability-load fault spuriously re-fires a few
        # times before the break sticks; each repeat costs a full fault.
        # Enough storms push UForkOS down the CoPA→CoA→eager ladder.
        for _ in range(3):
            machine.charge(machine.costs.page_fault_ns, "page_fault")
            machine.obs.count("core.strategies.cap_fault_storm_repeats")
        machine.chaos.note_recovery("core.strategies.cap_fault_storm")
    _make_private(space, vpn, pte, relocate=True, note=note)
    machine.counters.add(f"fork_child_break_{kind.name.lower()}")
    machine.obs.count(f"core.strategies.{note.strategy.value}"
                      f".break.child.{kind.name.lower()}")
    machine.trace("cow_break", role="child", vpn=vpn,
                  kind=kind.name.lower())
    return True


def _make_private(space: AddressSpace, vpn: int, pte: PTE,
                  relocate: bool, note: ShareNote) -> None:
    """Give this mapping a private frame (copying if still shared) and
    restore its original permissions."""
    machine = space.machine
    if machine.phys.refcount(pte.frame) > 1:
        new_frame = machine.phys.copy_frame(pte.frame, preserve_tags=True)
        if relocate:
            relocate_frame(machine, machine.phys.frame(new_frame),
                           note.regions)
        space.replace_frame(vpn, new_frame)
        machine.counters.add("fork_page_copies")
    elif relocate:
        # Last sharer (peer exited/copied): the frame is now private but
        # may still hold parent-region capabilities needing relocation.
        relocate_frame(machine, machine.phys.frame(pte.frame), note.regions)
    pte.perms = note.orig_perms
    pte.note = None
    index = getattr(space, "_share_note_vpns", None)
    if index is not None:
        index.discard(vpn)


def resolve_all_pending(space: AddressSpace, region_base: int,
                        region_top: int) -> int:
    """Force-resolve every still-shared *child-role* page of a region.

    μFork calls this on a process about to fork again while some of its
    own pages are still shared with *its* parent: stabilizing the image
    first keeps relocation a single-hop rebase.
    """
    machine = space.machine
    page = machine.config.page_size
    resolved = 0
    for vpn in range(region_base // page, (region_top + page - 1) // page):
        pte = space.page_table.get(vpn)
        if pte is not None and isinstance(pte.note, ShareNote) \
                and pte.note.role == "child":
            machine.charge(machine.costs.page_fault_ns, "page_fault")
            _make_private(space, vpn, pte, relocate=True, note=pte.note)
            resolved += 1
    if resolved:
        machine.obs.count("core.strategies.resolved_pending_pages",
                          resolved)
    return resolved


def iter_share_notes(space: AddressSpace):
    """Yield ``(vpn, pte, note)`` for every still-shared page.

    Audit hook for the conformance invariants: a consistent kernel
    never leaves a :class:`ShareNote` whose frame has been freed, whose
    role is unknown, or whose restored permissions would be *narrower*
    than the current ones (sharing only ever removes permissions).

    With :mod:`repro.perf` enabled the walk is served from the space's
    candidate-vpn index (see :func:`_note_index`) instead of a full
    page-table scan; every candidate is re-validated against the live
    PTE, so the audited set is identical either way.
    """
    if getattr(space, "_perf", False):
        index = getattr(space, "_share_note_vpns", None)
        if index is None:
            return  # no ShareNote was ever created in this space
        for vpn in sorted(index):
            pte = space.page_table.get(vpn)
            if pte is None or not isinstance(pte.note, ShareNote):
                index.discard(vpn)
                continue
            yield vpn, pte, pte.note
        return
    for vpn, pte in space.page_table.entries():
        if isinstance(pte.note, ShareNote):
            yield vpn, pte, pte.note

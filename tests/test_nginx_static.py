"""Tests for MiniNginx's static-file mode (ram-disk docroot)."""

import pytest

from repro.apps.guest import GuestContext
from repro.apps.nginx import MiniNginx, nginx_image
from repro.core import UForkOS
from repro.machine import Machine


def boot_static(workers=1):
    os_ = UForkOS(machine=Machine())
    master = GuestContext(os_, os_.spawn(nginx_image(), "nginx"))
    server = MiniNginx(master, docroot="/www")
    server.publish("index.html", b"<h1>hello</h1>")
    server.publish("big.bin", b"B" * 20_000)
    server.fork_workers(workers)
    client = GuestContext(os_, os_.spawn(nginx_image(), "wrk"))
    return os_, server, client


def request(client, server, worker, path):
    fd = client.syscall("connect", server.port)
    client.send_bytes(fd, b"GET /" + path + b" HTTP/1.1\r\n\r\n")
    server.serve_one(worker)
    # drain the whole response (headers + possibly large body)
    out = bytearray()
    while True:
        chunk = client.recv_bytes(fd, 65536)
        if not chunk:
            break
        out.extend(chunk)
        if b"\r\n\r\n" in out:
            header, _, body = bytes(out).partition(b"\r\n\r\n")
            length = int(header.split(b"content-length: ")[1]
                         .split(b"\r\n")[0])
            if len(body) >= length:
                break
    client.syscall("close", fd)
    return bytes(out)


class TestStaticServing:
    def test_serves_published_file(self):
        os_, server, client = boot_static()
        response = request(client, server, server.workers[0],
                           b"index.html")
        assert response.endswith(b"<h1>hello</h1>")

    def test_large_file_roundtrip(self):
        os_, server, client = boot_static()
        response = request(client, server, server.workers[0], b"big.bin")
        _header, _, body = response.partition(b"\r\n\r\n")
        assert body == b"B" * 20_000

    def test_missing_file_is_404(self):
        os_, server, client = boot_static()
        response = request(client, server, server.workers[0], b"nope.txt")
        assert b"404 not found" in response

    def test_workers_see_files_published_before_fork(self):
        """fd-independent: the docroot lives in the shared ram-disk, so
        every forked worker serves the same content."""
        os_, server, client = boot_static(workers=3)
        for worker in server.workers:
            response = request(client, server, worker, b"index.html")
            assert response.endswith(b"<h1>hello</h1>")

    def test_file_io_charged_per_request(self):
        os_, server, client = boot_static()
        ops_before = os_.machine.counters.get("syscall_open")
        request(client, server, server.workers[0], b"index.html")
        assert os_.machine.counters.get("syscall_open") > ops_before

    def test_publish_without_docroot_rejected(self):
        os_ = UForkOS(machine=Machine())
        master = GuestContext(os_, os_.spawn(nginx_image(), "nginx"))
        server = MiniNginx(master)
        with pytest.raises(ValueError):
            server.publish("x", b"y")

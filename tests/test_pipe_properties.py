"""Property-based tests for pipes: the byte stream matches a simple
FIFO model under arbitrary interleavings of reads and writes."""

from hypothesis import given, settings, strategies as st

from repro.errors import WouldBlock
from repro.kernel.ipc import Pipe
from repro.machine import Machine

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.binary(min_size=1, max_size=64)),
        st.tuples(st.just("read"), st.integers(1, 64)),
    ),
    max_size=80,
)


@settings(max_examples=60, deadline=None)
@given(ops=OPS, capacity=st.integers(8, 256))
def test_prop_pipe_is_a_fifo(ops, capacity):
    machine = Machine()
    pipe = Pipe(machine, capacity=capacity)
    model = bytearray()
    written = bytearray()
    read_back = bytearray()

    for op, arg in ops:
        if op == "write":
            try:
                accepted = pipe.write(arg)
            except WouldBlock:
                assert len(model) >= capacity
                continue
            # short writes happen exactly at capacity
            assert accepted == min(len(arg), capacity - len(model))
            model.extend(arg[:accepted])
            written.extend(arg[:accepted])
        else:
            try:
                chunk = pipe.read(arg)
            except WouldBlock:
                assert not model
                continue
            assert chunk == bytes(model[:arg])
            del model[:len(chunk)]
            read_back.extend(chunk)

    # conservation: bytes out is a prefix of bytes in
    assert bytes(written[:len(read_back)]) == bytes(read_back)
    assert pipe.buffered == len(model)


@settings(max_examples=30, deadline=None)
@given(chunks=st.lists(st.binary(min_size=1, max_size=32), min_size=1,
                       max_size=20))
def test_prop_drain_after_writer_close_yields_exact_stream(chunks):
    machine = Machine()
    pipe = Pipe(machine, capacity=1 << 16)
    for chunk in chunks:
        pipe.write(chunk)
    pipe.write_open = False
    out = bytearray()
    while True:
        piece = pipe.read(7)
        if not piece:
            break
        out.extend(piece)
    assert bytes(out) == b"".join(chunks)

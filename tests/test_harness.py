"""Tests for the experiment harness: report rendering, Table 1 data,
and fast smoke runs of the per-figure experiment functions."""

import pytest

from repro.harness.experiments import (
    copa_ablation,
    fig3_redis_save,
    fig4_redis_fork_latency,
    fig6_faas_throughput,
    fig8_hello_fork,
    fig9_unixbench,
)
from repro.harness.report import format_table, human_size
from repro.harness.table1 import TABLE1, satisfies_all_goals, table1_rows
from repro.mem.layout import KiB, MiB


class TestReport:
    def test_format_table_alignment(self):
        rows = [
            {"name": "a", "value": 1.5},
            {"name": "long-name", "value": 123456.0},
        ]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equally wide

    def test_format_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_column_subset_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_number_formatting(self):
        text = format_table([{"x": 123456.789, "y": 0.00123, "z": 12.34}])
        assert "123,457" in text
        assert "0.00123" in text
        assert "12.3" in text

    def test_human_size(self):
        assert human_size(512) == "512B"
        assert human_size(100 * KiB) == "100KB"
        assert human_size(100 * MiB) == "100MB"


class TestTable1:
    def test_only_ufork_satisfies_all(self):
        winners = [r.system for r in TABLE1 if satisfies_all_goals(r)]
        assert winners == ["uFork"]

    def test_row_count_matches_paper(self):
        assert len(TABLE1) == 10

    def test_rendered_rows_use_yes_no(self):
        rows = table1_rows()
        assert rows[-1]["System"] == "uFork"
        assert rows[-1]["SAS"] == "Yes"
        assert rows[-1]["Seg"] == "No"

    def test_segment_relative_systems_are_the_early_sasoses(self):
        seg = {r.system for r in TABLE1 if r.segment_relative}
        assert seg == {"Angel", "Mungi"}


@pytest.mark.slow
class TestExperimentSmoke:
    """Tiny-size runs of each experiment: structure + invariants."""

    SIZES = (100 * KiB, 512 * KiB)

    def test_fig3_rows(self):
        rows = fig3_redis_save(sizes=self.SIZES, value_size=50 * KiB)
        assert [row["db_size"] for row in rows] == list(self.SIZES)
        for row in rows:
            assert row["ufork_ms"] < row["cheribsd_ms"]

    def test_fig4_rows(self):
        rows = fig4_redis_fork_latency(sizes=self.SIZES,
                                       value_size=50 * KiB)
        for row in rows:
            assert row["ufork_copa_us"] <= row["ufork_coa_us"]
            assert row["ufork_full_us"] > row["ufork_coa_us"]

    def test_fig6_rows(self):
        rows = fig6_faas_throughput(core_counts=(1, 2), window_s=1.0)
        assert [row["cores"] for row in rows] == [1, 2]
        for row in rows:
            assert row["ufork_per_s"] >= row["cheribsd_per_s"] * 0.95

    def test_fig8_rows(self):
        rows = fig8_hello_fork(samples=3)
        systems = [row["system"] for row in rows]
        assert systems == ["ufork", "cheribsd", "nephele"]

    def test_fig9_rows(self):
        rows = fig9_unixbench(spawn_iterations=100, context1_target=1000,
                              measured_fraction=0.2)
        by_system = {row["system"]: row for row in rows}
        assert by_system["ufork"]["spawn_ms"] < \
            by_system["cheribsd"]["spawn_ms"]

    def test_copa_ablation_rows(self):
        rows = copa_ablation(db_bytes=1 * MiB, value_size=50 * KiB)
        assert [row["strategy"] for row in rows] == \
            ["full_copy", "coa", "copa"]

    def test_experiments_deterministic(self):
        first = fig8_hello_fork(samples=2)
        second = fig8_hello_fork(samples=2)
        assert first == second

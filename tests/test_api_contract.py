"""Contract tests for the stable :mod:`repro.api` facade.

The facade is the one import downstream scripts are told to rely on
(docs/API.md), so its *surface* — exported names and call signatures —
is pinned here.  Changing a default, renaming a keyword, or dropping an
export fails this file before it breaks anyone's experiment script;
intentional changes must update both the facade and these snapshots.
"""

import inspect
import warnings

import pytest

import repro.api as api
from repro.api import ISOLATIONS, OSES, STRATEGIES, Session


class TestSurface:
    def test_exported_names(self):
        assert api.__all__ == [
            "OSES",
            "STRATEGIES",
            "ISOLATIONS",
            "Session",
            "Machine",
            "make_scheduler",
        ]
        for name in api.__all__:
            assert hasattr(api, name), f"__all__ lists missing {name}"

    def test_vocabulary_constants(self):
        assert OSES == ("ufork", "monolithic", "vmclone", "isounik")
        assert STRATEGIES == ("full", "coa", "copa")
        assert ISOLATIONS == ("none", "fault", "full")

    def test_session_init_signature(self):
        signature = inspect.signature(Session.__init__)
        parameters = dict(signature.parameters)
        parameters.pop("self")
        # every knob is keyword-only: positional call sites can never
        # form, so parameters can be reordered/added compatibly
        assert all(p.kind is inspect.Parameter.KEYWORD_ONLY
                   for p in parameters.values())
        defaults = {name: p.default for name, p in parameters.items()}
        assert defaults == {
            "os": "ufork",
            "strategy": "copa",
            "isolation": "fault",
            "cpus": 1,
            "seed": 7,
            "obs": False,
            "chaos": None,
            "perf": None,
        }

    def test_perf_knob_pins_representation(self):
        # tri-state: True/False force a representation, None (default)
        # follows the REPRO_PERF environment resolution
        from repro import perf as _perf
        fast = Session(seed=7, perf=True).boot()
        slow = Session(seed=7, perf=False).boot()
        env = Session(seed=7).boot()
        assert fast.machine.perf is True
        assert slow.machine.perf is False
        assert env.machine.perf is _perf.enabled()
        # the knob reaches the storage layer: flat banked frames only
        # under the vectorized engine
        assert fast.machine.phys._perf is True
        assert slow.machine.phys._perf is False

    def test_session_method_signatures(self):
        spawn = inspect.signature(Session.spawn).parameters
        assert list(spawn) == ["self", "image", "name"]
        assert spawn["image"].default is None
        assert spawn["name"].default == "app"
        assert list(inspect.signature(Session.run).parameters) == \
            ["self", "workload"]
        assert list(inspect.signature(Session.report).parameters) == \
            ["self"]
        assert list(inspect.signature(Session.boot).parameters) == \
            ["self"]

    def test_cluster_hook_signatures(self):
        # docs/API.md "Cluster hooks": warm_pool's knobs are keyword-only
        pool = inspect.signature(Session.warm_pool).parameters
        assert list(pool) == ["self", "size", "image", "warm", "name"]
        for name in ("image", "warm", "name"):
            assert pool[name].kind is inspect.Parameter.KEYWORD_ONLY
        assert pool["image"].default is None
        assert pool["warm"].default is None
        assert pool["name"].default == "zygote"
        assert list(inspect.signature(Session.obs_export).parameters) \
            == ["self"]

    def test_snapshot_hook_signatures(self):
        # docs/API.md "Snapshot hooks": checkpoint/restore knobs are
        # keyword-only so the positional surface stays (pid,) / (blob,)
        cp = inspect.signature(Session.checkpoint).parameters
        assert list(cp) == ["self", "pid", "incremental"]
        assert cp["incremental"].kind is inspect.Parameter.KEYWORD_ONLY
        assert cp["incremental"].default is False
        rs = inspect.signature(Session.restore).parameters
        assert list(rs) == ["self", "blob", "name"]
        assert rs["name"].kind is inspect.Parameter.KEYWORD_ONLY
        assert rs["name"].default is None


class TestValidation:
    def test_unknown_names_fail_at_construction(self):
        with pytest.raises(ValueError, match="unknown os"):
            Session(os="linux")
        with pytest.raises(ValueError, match="unknown strategy"):
            Session(strategy="cow")
        with pytest.raises(ValueError, match="unknown isolation"):
            Session(isolation="max")
        with pytest.raises(ValueError, match="cpus"):
            Session(cpus=0)


class TestBehavior:
    def test_boot_is_idempotent(self):
        session = Session().boot()
        machine = session.machine
        assert session.boot().machine is machine

    def test_report_schema(self):
        session = Session(os="ufork", strategy="copa")
        parent = session.spawn()
        child = parent.fork()
        child.exit(0)
        parent.wait(child.pid)
        report = session.report()
        assert report["schema"] == "repro.api/v1"
        assert report["os"] == "ufork"
        assert report["strategy"] == "copa"
        assert report["simulated_ns"] == session.machine.clock.now_ns
        assert report["counters"]["fork"] >= 1
        assert "obs" not in report and "chaos" not in report

    def test_obs_and_chaos_keys(self):
        with Session(obs=True, chaos="default=0.0") as session:
            parent = session.spawn()
            child = parent.fork()
            child.exit(0)
            parent.wait(child.pid)
            report = session.report()
        assert report["obs"]["schema"] == "repro.obs/v1"
        assert "schema" in report["chaos"]

    def test_every_os_boots(self):
        for os_name in OSES:
            session = Session(os=os_name, seed=0).boot()
            assert type(session.os).__name__.lower().startswith(
                os_name[:4])

    def test_run_returns_workload_result(self):
        assert Session().run(lambda s: s.machine.clock.now_ns) >= 0

    def test_checkpoint_restore_round_trip(self):
        from repro.apps.guest import GuestContext
        from repro.snapshot import SCHEMA, decode
        donor = Session()
        ctx = donor.spawn(name="donor")
        cap = ctx.malloc(64)
        ctx.store(cap, b"facade round trip")
        ctx.set_reg("c19", cap)
        blob = donor.checkpoint(ctx.proc.pid)
        assert decode(blob)[0]["schema"] == SCHEMA
        ctx.exit(0)

        target = Session(seed=99)
        target.spawn(name="resident").exit(0)
        pid = target.restore(blob, name="revived")
        restored = GuestContext(target.os, target.os.procs.get(pid))
        assert restored.load(restored.reg("c19"), 17) == \
            b"facade round trip"
        restored.exit(0)


class TestDeprecationShims:
    def test_machine_shim_warns_and_forwards(self):
        from repro.machine import Machine as RealMachine
        with pytest.warns(DeprecationWarning, match="Session"):
            machine = api.Machine(seed=3)
        assert isinstance(machine, RealMachine)

    def test_make_scheduler_shim_warns_and_forwards(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            machine = api.Machine()
        with pytest.warns(DeprecationWarning, match="Session.boot"):
            scheduler = api.make_scheduler(machine,
                                           same_address_space=True)
        assert hasattr(scheduler, "pick_next")

#!/usr/bin/env python3
"""Multi-core fork: per-CPU run queues, work stealing, shootdown IPIs.

Boots the same machine with 1, 2 and 4 online CPUs and drives the
zygote FaaS workload (Fig 6) across them, then demonstrates the §2.2
lightweightness argument directly: classic fork must broadcast TLB
shootdowns to every other online CPU, while μFork consults the
μprocess's CPU footprint and sends none for a single-threaded parent.

Run:  python examples/smp_workers.py
"""

from repro.smp.runner import format_summary, run_smp


def main() -> None:
    print("FaaS zygote throughput vs online CPUs (64 requests):\n")
    base = None
    for cpus in (1, 2, 4):
        summary = run_smp(seed=7, num_cpus=cpus, requests=64,
                          workload="faas")
        if base is None:
            base = summary["throughput_rps"]
        speedup = summary["throughput_rps"] / base
        print(f"  {cpus} CPU(s): {summary['throughput_rps']:8.0f} req/s "
              f"({speedup:.2f}x)  steals={summary['steals']} "
              f"ipis={summary['ipi']['sent']}")

    print("\nWhy fork's gap widens with cores (§2.2) — shootdown IPIs "
          "per 16 fork/exit cycles from a single-threaded parent:\n")
    for cpus in (1, 2, 4, 8):
        summary = run_smp(seed=7, num_cpus=cpus, requests=16,
                          workload="forkbench")
        systems = summary["systems"]
        print(f"  {cpus} CPU(s): "
              f"ufork {systems['ufork']['shootdown_ipis']:3d} IPIs "
              f"({systems['ufork']['per_fork_ns'] / 1e3:6.1f} us/fork)   "
              f"monolithic {systems['monolithic']['shootdown_ipis']:3d} "
              f"IPIs ({systems['monolithic']['per_fork_ns'] / 1e3:6.1f} "
              f"us/fork)")

    print("\nFull per-CPU breakdown of the 4-core FaaS run:\n")
    print(format_summary(run_smp(seed=7, num_cpus=4, requests=64,
                                 workload="faas")))


if __name__ == "__main__":
    main()
